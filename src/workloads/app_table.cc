/**
 * @file
 * The 38-bar application roster (the paper's 37 apps; CPU2017's lbm
 * and namd reappear as in its figures). Each entry instantiates a
 * kernel with parameters calibrated to the suite characteristics the
 * paper reports: SPEC = moderate locality with streaming components,
 * lbm's ~22 % L1D miss rate, SPLASH3 = cache-resident but store-heavy
 * with short regions and sequential writes, WHISPER = persistent
 * key-value traffic, STAMP = transactions with atomics, and the
 * memory-intensive subset (Figs. 1/17/18) with multi-GB-style
 * streaming footprints.
 */

#include "workloads/workload.hh"

namespace cwsp::workloads {

namespace {

AppProfile
mix(const std::string &name, const std::string &suite, MixParams p,
    bool mem_intensive = false)
{
    AppProfile a;
    a.name = name;
    a.suite = suite;
    a.kind = KernelKind::Mix;
    a.memIntensive = mem_intensive;
    a.mix = p;
    a.mix.seed ^= std::hash<std::string>{}(name);
    a.mix.seed |= 1;
    return a;
}

MixParams
mixParams(std::uint64_t iters, std::uint32_t unroll,
          std::uint32_t hot_pct, std::uint32_t warm_pct,
          std::uint32_t cold_pct, std::uint32_t store_pct,
          std::uint64_t hot_words, std::uint64_t warm_words,
          std::uint64_t cold_lines)
{
    MixParams p;
    p.iterations = iters;
    p.unroll = unroll;
    p.hotPct = hot_pct;
    p.warmPct = warm_pct;
    p.coldPct = cold_pct;
    p.storePct = store_pct;
    p.hotWords = hot_words;
    p.warmWords = warm_words;
    p.coldLines = cold_lines;
    return p;
}

std::vector<AppProfile>
makeTable()
{
    std::vector<AppProfile> t;

    // ---------------- SPEC CPU2006 ----------------
    {
        AppProfile a;
        a.name = "astar";
        a.suite = "cpu2006";
        a.kind = KernelKind::PChase;
        a.memIntensive = true;
        a.pchase = PChaseParams{1 << 16, 98765, 40'000, 8, 512};
        t.push_back(a);
    }
    t.push_back(mix("bzip2", "cpu2006",
                    mixParams(10'000, 4, 45, 25, 5, 25, 1 << 12,
                              1 << 15, 1 << 14)));
    {
        AppProfile a;
        a.name = "gobmk";
        a.suite = "cpu2006";
        a.kind = KernelKind::TreeSearch;
        a.tree = TreeSearchParams{1 << 13, 10, 2'600, 4, 11};
        t.push_back(a);
    }
    t.push_back(mix("h264ref", "cpu2006",
                    mixParams(7'000, 6, 35, 30, 10, 35, 1 << 11,
                              1 << 15, 1 << 14)));
    {
        auto p = mixParams(11'000, 6, 45, 35, 10, 50, 1 << 10,
                           1 << 16, 1 << 16);
        t.push_back(mix("lbm", "cpu2006", p, true));
    }
    t.push_back(mix("libquantum", "cpu2006",
                    mixParams(12'000, 4, 25, 45, 30, 30, 1 << 10,
                              1 << 16, 1 << 16),
                    true));
    t.push_back(mix("milc", "cpu2006",
                    mixParams(10'000, 5, 40, 40, 20, 40, 1 << 10,
                              1 << 16, 1 << 16),
                    true));
    {
        AppProfile a;
        a.name = "namd";
        a.suite = "cpu2006";
        a.kind = KernelKind::NBody;
        a.nbody = NBodyParams{1 << 9, 8, 9, 2};
        t.push_back(a);
    }
    {
        AppProfile a;
        a.name = "sjeng";
        a.suite = "cpu2006";
        a.kind = KernelKind::TreeSearch;
        a.tree = TreeSearchParams{1 << 12, 9, 2'800, 4, 23};
        t.push_back(a);
    }
    t.push_back(mix("soplex", "cpu2006",
                    mixParams(8'000, 5, 30, 35, 10, 30, 1 << 12,
                              1 << 16, 1 << 14)));

    // ---------------- SPEC CPU2017 ----------------
    {
        AppProfile a;
        a.name = "dsjeng";
        a.suite = "cpu2017";
        a.kind = KernelKind::TreeSearch;
        a.tree = TreeSearchParams{1 << 13, 12, 2'400, 4, 37};
        t.push_back(a);
    }
    {
        auto p = mixParams(6'000, 8, 40, 15, 5, 20, 1 << 12, 1 << 14,
                           1 << 13);
        p.computeOps = 6;
        t.push_back(mix("imagick", "cpu2017", p));
    }
    {
        auto p = mixParams(11'000, 6, 45, 35, 10, 50, 1 << 10,
                           1 << 16, 1 << 16);
        p.seed = 777;
        t.push_back(mix("lbm17", "cpu2017", p));
    }
    {
        AppProfile a;
        a.name = "leela";
        a.suite = "cpu2017";
        a.kind = KernelKind::TreeSearch;
        a.tree = TreeSearchParams{1 << 14, 11, 2'500, 4, 41};
        t.push_back(a);
    }
    {
        AppProfile a;
        a.name = "nab";
        a.suite = "cpu2017";
        a.kind = KernelKind::NBody;
        a.nbody = NBodyParams{1 << 9, 10, 7, 2};
        t.push_back(a);
    }
    {
        AppProfile a;
        a.name = "namd17";
        a.suite = "cpu2017";
        a.kind = KernelKind::NBody;
        a.nbody = NBodyParams{1 << 10, 6, 8, 2};
        t.push_back(a);
    }
    t.push_back(mix("xz", "cpu2017",
                    mixParams(9'000, 4, 35, 25, 15, 30, 1 << 13,
                              1 << 15, 1 << 14)));

    // ---------------- DOE Mini-apps ----------------
    {
        auto p = mixParams(10'000, 6, 35, 40, 20, 45, 1 << 11,
                           1 << 16, 1 << 16);
        p.callEvery = 3;
        p.prunableDerived = 3;
        t.push_back(mix("lulesh", "miniapps", p, true));
    }
    t.push_back(mix("xsbench", "miniapps",
                    mixParams(12'000, 4, 25, 50, 25, 10, 1 << 10,
                              1 << 16, 1 << 16),
                    true));

    // ---------------- SPLASH3 ----------------
    {
        auto p = mixParams(4'500, 10, 60, 10, 0, 40, 1 << 10, 1 << 11,
                           1 << 10);
        p.computeOps = 5;
        t.push_back(mix("cholesky", "splash3", p));
    }
    t.push_back(mix("fft", "splash3",
                    mixParams(5'000, 8, 50, 20, 0, 45, 1 << 10,
                              1 << 11, 1 << 10)));
    {
        auto p = mixParams(5'500, 8, 60, 15, 5, 50, 1 << 10, 1 << 11,
                           1 << 12);
        p.coldWordStride = true;
        t.push_back(mix("lu-cg", "splash3", p));
    }
    {
        auto p = mixParams(8'000, 4, 55, 15, 5, 60, 1 << 10, 1 << 11,
                           1 << 12);
        p.sharedReadWrite = true;
        p.coldWordStride = true;
        t.push_back(mix("lu-ncg", "splash3", p));
    }
    t.push_back(mix("ocg", "splash3",
                    mixParams(5'000, 8, 45, 25, 5, 45, 1 << 12,
                              1 << 16, 1 << 12)));
    {
        auto p = mixParams(7'000, 5, 45, 25, 5, 50, 1 << 10, 1 << 12,
                           1 << 12);
        p.sharedReadWrite = true;
        t.push_back(mix("oncg", "splash3", p));
    }
    {
        auto p = mixParams(9'000, 4, 20, 10, 55, 85, 1 << 10, 1 << 11,
                           1 << 14);
        p.coldWordStride = true;
        t.push_back(mix("radix", "splash3", p));
    }
    {
        AppProfile a;
        a.name = "raytrace";
        a.suite = "splash3";
        a.kind = KernelKind::PChase;
        a.pchase = PChaseParams{1 << 14, 7919, 45'000, 16, 8};
        t.push_back(a);
    }
    {
        AppProfile a;
        a.name = "water-ns";
        a.suite = "splash3";
        a.kind = KernelKind::NBody;
        a.nbody = NBodyParams{1 << 9, 8, 9, 3};
        t.push_back(a);
    }
    {
        AppProfile a;
        a.name = "water-sp";
        a.suite = "splash3";
        a.kind = KernelKind::NBody;
        a.nbody = NBodyParams{1 << 10, 6, 7, 3};
        t.push_back(a);
    }

    // ---------------- WHISPER ----------------
    {
        AppProfile a;
        a.name = "p"; // echo-style persistent heap
        a.suite = "whisper";
        a.kind = KernelKind::KvStore;
        a.memIntensive = true;
        a.kv = KvStoreParams{1 << 16, 1 << 14, 22'000, 20, 101};
        t.push_back(a);
    }
    {
        AppProfile a;
        a.name = "c"; // ctree
        a.suite = "whisper";
        a.kind = KernelKind::TreeSearch;
        a.memIntensive = true;
        a.tree = TreeSearchParams{1 << 16, 14, 2'600, 2, 103};
        t.push_back(a);
    }
    {
        AppProfile a;
        a.name = "rb"; // redis
        a.suite = "whisper";
        a.kind = KernelKind::KvStore;
        a.memIntensive = true;
        a.kv = KvStoreParams{1 << 16, 1 << 14, 20'000, 40, 107};
        t.push_back(a);
    }
    {
        AppProfile a;
        a.name = "sps";
        a.suite = "whisper";
        a.kind = KernelKind::Gups;
        a.memIntensive = true;
        a.gups = GupsParams{1 << 17, 30'000, 1, 109};
        t.push_back(a);
    }
    {
        AppProfile a;
        a.name = "tatp";
        a.suite = "whisper";
        a.kind = KernelKind::KvStore;
        a.memIntensive = true;
        a.kv = KvStoreParams{1 << 15, 1 << 13, 22'000, 60, 113};
        t.push_back(a);
    }
    {
        AppProfile a;
        a.name = "tpcc";
        a.suite = "whisper";
        a.kind = KernelKind::KvStore;
        a.memIntensive = true;
        a.kv = KvStoreParams{1 << 16, 1 << 14, 18'000, 25, 127};
        t.push_back(a);
    }

    // ---------------- STAMP ----------------
    {
        AppProfile a;
        a.name = "kmeans";
        a.suite = "stamp";
        a.kind = KernelKind::AtomicMix;
        a.atomic = AtomicMixParams{1 << 14, 64, 700, 48, 201};
        t.push_back(a);
    }
    {
        AppProfile a;
        a.name = "ssca2";
        a.suite = "stamp";
        a.kind = KernelKind::AtomicMix;
        a.atomic = AtomicMixParams{1 << 18, 256, 900, 32, 203};
        t.push_back(a);
    }
    {
        AppProfile a;
        a.name = "vacation";
        a.suite = "stamp";
        a.kind = KernelKind::AtomicMix;
        a.atomic = AtomicMixParams{1 << 16, 128, 500, 64, 207};
        t.push_back(a);
    }
    return t;
}

} // namespace

const std::vector<AppProfile> &
appTable()
{
    static const std::vector<AppProfile> table = makeTable();
    return table;
}

} // namespace cwsp::workloads
