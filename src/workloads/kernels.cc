#include "workloads/kernels.hh"

#include <algorithm>
#include <vector>

#include "ir/builder.hh"
#include "ir/verifier.hh"
#include "sim/logging.hh"

namespace cwsp::workloads {

namespace {

using ir::BlockId;
using ir::IRBuilder;
using ir::Opcode;
using ir::Reg;

// LCG constants (Knuth MMIX).
constexpr std::int64_t kLcgA = 0x5851f42d4c957f2dLL;
constexpr std::int64_t kLcgC = 0x14057b7ef767814fLL;

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Add a tiny leaf function `leaf(x) = x ^ (x >> 7)` and return it. */
ir::FuncId
addLeaf(ir::Module &m)
{
    auto &f = m.addFunction("leaf", 1);
    IRBuilder b(f);
    b.setBlock(b.newBlock());
    b.shrImm(1, 0, 7);
    b.xorOp(0, 0, 1);
    b.ret(0);
    return f.id();
}

} // namespace

namespace {

/**
 * Emit either `main` (single-threaded) or `worker(tid)` for the mix
 * kernel. Worker mode partitions the write arrays and the cold
 * stream per thread (data-race-free, deterministic) while the read
 * sets stay shared; sharedReadWrite is forced off.
 */
void
emitMixFunction(ir::Module &m, const MixParams &p, ir::FuncId leaf,
                bool worker, std::uint32_t num_workers)
{
    auto &hotR = m.global("hot_r");
    auto &warmR = m.global("warm_r");
    auto &cold = m.global("cold");
    auto &hotW = m.global("hot_w");
    auto &warmW = m.global("warm_w");

    bool shared_rw = p.sharedReadWrite && !worker;
    std::uint64_t hot_w_words = p.hotWords;
    std::uint64_t warm_w_words = p.warmWords;
    std::uint64_t cold_lines = p.coldLines;
    if (worker) {
        cwsp_assert(num_workers >= 1,
                    "mix kernel worker count must be >= 1");
        // Per-worker slice sizes floor to a power of two: slice
        // offsets are mask-derived, and tid-strided slices of the
        // floored size never overlap for any worker count.
        auto slice = [&](std::uint64_t words) {
            std::uint64_t s =
                std::max<std::uint64_t>(1, words / num_workers);
            while (s & (s - 1))
                s &= s - 1;
            return s;
        };
        hot_w_words = slice(p.hotWords);
        warm_w_words = slice(p.warmWords);
        cold_lines = slice(p.coldLines);
    }

    auto &f = m.addFunction(worker ? "worker" : "main",
                            worker ? 1 : 0);
    IRBuilder b(f);
    BlockId entry = b.newBlock();
    BlockId header = b.newBlock();
    BlockId body = b.newBlock();
    BlockId exit = b.newBlock();

    // Register plan (see the single-threaded comment below): r0 is
    // the worker's tid in worker mode.
    const Reg rTid = 0, rHot = 8, rWarm = 9, rCold = 10, rRng = 11,
              rOff = 12, rI = 13, rN = 14, rAcc = 15, rIt = 20,
              rHotW = 25, rWarmW = 26, rT0 = 16, rT1 = 17, rT2 = 18,
              rLeaf = 29;

    // Group-kind allocation with exact proportions.
    enum class GK { Hot, Warm, Cold, Compute };
    std::vector<GK> kinds;
    {
        auto quota = [&p](std::uint32_t pct) {
            return (pct * p.unroll + 50) / 100;
        };
        std::uint32_t nh = quota(p.hotPct);
        std::uint32_t nw = quota(p.warmPct);
        std::uint32_t nc = quota(p.coldPct);
        while (nh + nw + nc > p.unroll) {
            if (nc > 0 && nh + nw + nc > p.unroll)
                --nc;
            else if (nw > 0)
                --nw;
            else
                --nh;
        }
        std::vector<GK> pool;
        std::uint32_t remaining[3] = {nh, nw, nc};
        const GK order[3] = {GK::Hot, GK::Warm, GK::Cold};
        while (pool.size() < p.unroll) {
            bool any = false;
            for (int k = 0; k < 3 && pool.size() < p.unroll; ++k) {
                if (remaining[k] > 0) {
                    pool.push_back(order[k]);
                    --remaining[k];
                    any = true;
                }
            }
            if (!any)
                pool.push_back(GK::Compute);
        }
        std::rotate(pool.begin(),
                    pool.begin() + (p.seed % pool.size()),
                    pool.end());
        kinds = pool;
    }
    std::uint32_t cold_groups = 0;
    for (GK k : kinds)
        cold_groups += k == GK::Cold;
    std::int64_t cold_stride = p.coldWordStride ? 8 : 64;

    b.setBlock(entry);
    b.movImm(rHot, static_cast<std::int64_t>(hotR.base));
    b.movImm(rWarm, static_cast<std::int64_t>(warmR.base));
    b.movImm(rCold, static_cast<std::int64_t>(cold.base));
    b.movImm(rHotW, static_cast<std::int64_t>(
                        shared_rw ? hotR.base : hotW.base));
    b.movImm(rWarmW, static_cast<std::int64_t>(
                         shared_rw ? warmR.base : warmW.base));
    b.movImm(rRng, static_cast<std::int64_t>(p.seed | 1));
    if (worker) {
        // Per-thread slices of the write arrays and the cold stream;
        // a per-thread random stream.
        b.binOpImm(Opcode::Mul, rT0, rTid,
                   static_cast<std::int64_t>(hot_w_words * 8));
        b.add(rHotW, rHotW, rT0);
        b.binOpImm(Opcode::Mul, rT0, rTid,
                   static_cast<std::int64_t>(warm_w_words * 8));
        b.add(rWarmW, rWarmW, rT0);
        b.binOpImm(Opcode::Mul, rT0, rTid,
                   static_cast<std::int64_t>(cold_lines * 64));
        b.add(rCold, rCold, rT0);
        b.binOpImm(Opcode::Mul, rT0, rTid, 0x9e3779b97f4a7c15LL);
        b.xorOp(rRng, rRng, rT0);
        b.binOpImm(Opcode::Or, rRng, rRng, 1);
    }
    b.movImm(rOff, 0);
    b.movImm(rI, 0);
    b.movImm(rN, static_cast<std::int64_t>(p.iterations));
    b.movImm(rAcc, 0);
    b.movImm(rLeaf, 0);
    b.br(header);

    b.setBlock(header);
    b.cmpUlt(rT0, rI, rN);
    b.condBr(rT0, body, exit);

    b.setBlock(body);
    b.binOpImm(Opcode::Mul, rRng, rRng, kLcgA);
    b.addImm(rRng, rRng, kLcgC);
    if (cold_groups > 0) {
        b.addImm(rOff, rOff,
                 cold_stride * static_cast<std::int64_t>(cold_groups));
        b.andImm(rOff, rOff,
                 static_cast<std::int64_t>(cold_lines * 64 - 1));
    }
    b.movImm(rIt, 0);

    std::int64_t hot_w_mask =
        static_cast<std::int64_t>((hot_w_words - 1) * 8) & ~7LL;
    std::int64_t warm_w_mask =
        static_cast<std::int64_t>((warm_w_words - 1) * 8) & ~7LL;

    std::uint32_t cold_seen = 0;
    std::uint32_t mem_seen = 0;
    for (std::uint32_t g = 0; g < p.unroll; ++g) {
        GK kind = kinds[g];
        bool is_store = false;
        if (kind != GK::Compute) {
            is_store = ((mem_seen + 1) * p.storePct) / 100 >
                       (mem_seen * p.storePct) / 100;
            ++mem_seen;
        }
        std::uint32_t shift = 3 + (g * 7) % 29;
        bool call_group =
            p.callEvery != 0 && (g % p.callEvery) == p.callEvery - 1;

        if (kind == GK::Hot) {
            b.shrImm(rT0, rRng, shift);
            b.andImm(rT0, rT0, static_cast<std::int64_t>(
                                   (p.hotWords - 1) * 8) &
                                   ~7LL);
            b.add(rT1, rHot, rT0);
            b.load(rT2, rT1);
            b.add(rIt, rIt, rT2);
            if (is_store) {
                if (worker)
                    b.andImm(rT0, rT0, hot_w_mask);
                b.add(rT1, rHotW, rT0);
                b.store(rIt, rT1);
            }
        } else if (kind == GK::Warm) {
            b.shrImm(rT0, rRng, shift);
            b.andImm(rT0, rT0, static_cast<std::int64_t>(
                                   (p.warmWords - 1) * 8) &
                                   ~7LL);
            b.add(rT1, rWarm, rT0);
            b.load(rT2, rT1);
            b.xorOp(rIt, rIt, rT2);
            if (is_store) {
                if (worker)
                    b.andImm(rT0, rT0, warm_w_mask);
                b.add(rT1, rWarmW, rT0);
                b.store(rIt, rT1);
            }
        } else if (kind == GK::Cold) {
            ++cold_seen;
            std::int64_t back =
                cold_stride *
                static_cast<std::int64_t>(cold_groups - cold_seen);
            b.binOpImm(Opcode::Sub, rT0, rOff, back);
            b.andImm(rT0, rT0,
                     static_cast<std::int64_t>(cold_lines * 64 - 1));
            b.add(rT1, rCold, rT0);
            if (is_store) {
                b.store(rIt, rT1);
            } else {
                b.load(rT2, rT1);
                b.add(rIt, rIt, rT2);
            }
        } else {
            for (std::uint32_t k = 0; k < p.computeOps; ++k) {
                switch ((g + k) % 3) {
                  case 0:
                    b.addImm(rIt, rIt, 0x9e37);
                    break;
                  case 1:
                    b.shrImm(rT0, rIt, 5);
                    b.xorOp(rIt, rIt, rT0);
                    break;
                  default:
                    b.binOpImm(Opcode::Mul, rIt, rIt, 33);
                    break;
                }
            }
        }

        if (call_group) {
            // Prunable derived values live across the call boundary.
            Reg derived[3] = {21, 22, 23};
            std::uint32_t nd = std::min(p.prunableDerived, 3u);
            for (std::uint32_t d = 0; d < nd; ++d) {
                b.addImm(derived[d], rHot,
                         static_cast<std::int64_t>(
                             ((g + d) % 8) * 64 + d * 8));
            }
            b.call(rLeaf, leaf, {rIt});
            b.add(rIt, rIt, rLeaf);
            for (std::uint32_t d = 0; d < nd; ++d) {
                b.load(rT2, derived[d]);
                b.xorOp(rIt, rIt, rT2);
            }
        }
    }
    b.add(rAcc, rAcc, rIt);
    b.addImm(rI, rI, 1);
    b.br(header);

    b.setBlock(exit);
    if (worker) {
        // Workers return their accumulator; the shared result cell is
        // only written by main (avoids a cross-thread race).
        b.ret(rAcc);
    } else {
        b.movImm(rT0, static_cast<std::int64_t>(
                          m.global("result").base));
        b.store(rAcc, rT0);
        b.store(rRng, rT0, 8);
        b.ret(rAcc);
    }
}

} // namespace

std::unique_ptr<ir::Module>
buildMixKernel(const MixParams &p, std::uint32_t num_workers)
{
    cwsp_assert(isPow2(p.hotWords) && isPow2(p.warmWords) &&
                    isPow2(p.coldLines),
                "mix kernel footprints must be powers of two");
    cwsp_assert(p.unroll >= 1 && p.unroll <= 16, "unroll out of range");

    auto mod = std::make_unique<ir::Module>();
    ir::Module &m = *mod;
    m.addGlobal("hot_r", p.hotWords * 8);
    m.addGlobal("warm_r", p.warmWords * 8);
    m.addGlobal("cold", p.coldLines * 64);
    m.addGlobal("hot_w", p.hotWords * 8);
    m.addGlobal("warm_w", p.warmWords * 8);
    m.addGlobal("result", 64);
    m.layoutMemory();

    ir::FuncId leaf = addLeaf(m);
    emitMixFunction(m, p, leaf, false, 1);
    if (num_workers > 0)
        emitMixFunction(m, p, leaf, true, num_workers);

    ir::verifyOrDie(m);
    return mod;
}

std::unique_ptr<ir::Module>
buildPChaseKernel(const PChaseParams &p)
{
    cwsp_assert(isPow2(p.nodes), "pchase nodes must be a power of two");

    cwsp_assert(isPow2(p.nodeStrideBytes) && p.nodeStrideBytes >= 8,
                "node stride must be a power of two >= 8");
    std::int64_t shift = 0;
    for (std::uint32_t v = p.nodeStrideBytes; v > 1; v >>= 1)
        ++shift;

    auto mod = std::make_unique<ir::Module>();
    ir::Module &m = *mod;
    auto &next = m.addGlobal("next", p.nodes * p.nodeStrideBytes);
    auto &payload = m.addGlobal("payload", p.nodes * p.nodeStrideBytes);
    m.addGlobal("result", 64);
    m.layoutMemory();

    auto &f = m.addFunction("main", 0);
    IRBuilder b(f);
    BlockId entry = b.newBlock();
    BlockId init_hdr = b.newBlock();
    BlockId init_body = b.newBlock();
    BlockId walk_hdr = b.newBlock();
    BlockId walk_body = b.newBlock();
    BlockId exit = b.newBlock();

    const Reg rNext = 8, rPay = 9, rI = 10, rN = 11, rCur = 12,
              rHops = 13, rH = 14, rT0 = 16, rT1 = 17, rT2 = 18,
              rAcc = 15;

    b.setBlock(entry);
    b.movImm(rNext, static_cast<std::int64_t>(next.base));
    b.movImm(rPay, static_cast<std::int64_t>(payload.base));
    b.movImm(rI, 0);
    b.movImm(rN, static_cast<std::int64_t>(p.nodes));
    b.movImm(rAcc, 0);
    b.br(init_hdr);

    // Init: next[i] = (i + stride) & (nodes - 1) — a single cycle
    // permutation when stride is odd. Sequential store burst (the
    // radix/SPLASH3 write pattern).
    b.setBlock(init_hdr);
    b.cmpUlt(rT0, rI, rN);
    b.condBr(rT0, init_body, walk_hdr);

    b.setBlock(init_body);
    b.addImm(rT0, rI, static_cast<std::int64_t>(p.stride));
    b.andImm(rT0, rT0, static_cast<std::int64_t>(p.nodes - 1));
    b.shlImm(rT1, rI, shift);
    b.add(rT1, rNext, rT1);
    b.store(rT0, rT1);
    b.addImm(rI, rI, 1);
    b.br(init_hdr);

    // Walk: cur = next[cur]; acc += cur; payload updated every k-th.
    b.setBlock(walk_hdr);
    // (falls through from init with rI == nodes)
    b.movImm(rCur, 0);
    b.movImm(rH, 0);
    b.movImm(rHops, static_cast<std::int64_t>(p.hops));
    b.br(walk_body);

    b.setBlock(walk_body);
    b.cmpUlt(rT0, rH, rHops);
    b.condBr(rT0, b.newBlock(), exit);
    BlockId walk_work = f.numBlocks() - 1;

    b.setBlock(walk_work);
    // Four dependent hops per iteration (compilers unroll such walk
    // loops at -O3, so a recoverable region spans several hops).
    for (int hop = 0; hop < 4; ++hop) {
        b.shlImm(rT1, rCur, shift);
        b.add(rT1, rNext, rT1);
        b.load(rCur, rT1);
        b.add(rAcc, rAcc, rCur);
        b.xorOp(rT2, rAcc, rCur);
        b.shrImm(rT2, rT2, 3);
        b.add(rAcc, rAcc, rT2);
    }
    // Occasional payload update (load-dependent address store).
    b.andImm(rT0, rH, static_cast<std::int64_t>(p.storeEvery - 1));
    b.cmpEqImm(rT0, rT0, 0);
    BlockId do_store = b.newBlock();
    BlockId cont = b.newBlock();
    b.condBr(rT0, do_store, cont);

    b.setBlock(do_store);
    b.shlImm(rT1, rCur, shift);
    b.add(rT1, rPay, rT1);
    b.store(rAcc, rT1);
    b.br(cont);

    b.setBlock(cont);
    b.addImm(rH, rH, 4);
    b.br(walk_body);

    b.setBlock(exit);
    b.movImm(rT0, static_cast<std::int64_t>(m.global("result").base));
    b.store(rAcc, rT0);
    b.ret(rAcc);

    ir::verifyOrDie(m);
    return mod;
}

std::unique_ptr<ir::Module>
buildGupsKernel(const GupsParams &p)
{
    cwsp_assert(isPow2(p.tableWords), "gups table must be power of two");

    auto mod = std::make_unique<ir::Module>();
    ir::Module &m = *mod;
    auto &table = m.addGlobal("table", p.tableWords * 8);
    m.addGlobal("result", 64);
    m.layoutMemory();

    auto &f = m.addFunction("main", 0);
    IRBuilder b(f);
    BlockId entry = b.newBlock();
    BlockId header = b.newBlock();
    BlockId body = b.newBlock();
    BlockId exit = b.newBlock();

    const Reg rTab = 8, rRng = 9, rI = 10, rN = 11, rAcc = 15,
              rT0 = 16, rT1 = 17, rT2 = 18;

    b.setBlock(entry);
    b.movImm(rTab, static_cast<std::int64_t>(table.base));
    b.movImm(rRng, static_cast<std::int64_t>(p.seed | 1));
    b.movImm(rI, 0);
    b.movImm(rN, static_cast<std::int64_t>(p.updates));
    b.movImm(rAcc, 0);
    b.br(header);

    b.setBlock(header);
    b.cmpUlt(rT0, rI, rN);
    b.condBr(rT0, body, exit);

    b.setBlock(body);
    b.binOpImm(Opcode::Mul, rRng, rRng, kLcgA);
    b.addImm(rRng, rRng, kLcgC);
    b.shrImm(rT0, rRng, 27);
    b.andImm(rT0, rT0,
             static_cast<std::int64_t>((p.tableWords - 1) * 8) & ~7LL);
    b.add(rT1, rTab, rT0);
    if (p.readModifyWrite) {
        b.load(rT2, rT1);
        b.xorOp(rT2, rT2, rRng);
        b.store(rT2, rT1);
        b.add(rAcc, rAcc, rT2);
    } else {
        b.store(rRng, rT1);
    }
    b.addImm(rI, rI, 1);
    b.br(header);

    b.setBlock(exit);
    b.movImm(rT0, static_cast<std::int64_t>(m.global("result").base));
    b.store(rAcc, rT0);
    b.ret(rAcc);

    ir::verifyOrDie(m);
    return mod;
}

std::unique_ptr<ir::Module>
buildKvStoreKernel(const KvStoreParams &p)
{
    cwsp_assert(isPow2(p.buckets) && isPow2(p.logWords),
                "kvstore sizes must be powers of two");

    auto mod = std::make_unique<ir::Module>();
    ir::Module &m = *mod;
    auto &keys = m.addGlobal("keys", p.buckets * 8);
    auto &vals = m.addGlobal("vals", p.buckets * 8);
    auto &log = m.addGlobal("oplog", p.logWords * 8);
    m.addGlobal("result", 64);
    m.layoutMemory();

    auto &f = m.addFunction("main", 0);
    IRBuilder b(f);
    BlockId entry = b.newBlock();
    BlockId header = b.newBlock();
    BlockId body = b.newBlock();
    BlockId do_insert = b.newBlock();
    BlockId do_lookup = b.newBlock();
    BlockId next = b.newBlock();
    BlockId exit = b.newBlock();

    const Reg rKeys = 8, rVals = 9, rLog = 10, rRng = 11, rI = 12,
              rN = 13, rLogPos = 14, rAcc = 15, rT0 = 16, rT1 = 17,
              rT2 = 18, rKey = 19, rIdx = 20;

    b.setBlock(entry);
    b.movImm(rKeys, static_cast<std::int64_t>(keys.base));
    b.movImm(rVals, static_cast<std::int64_t>(vals.base));
    b.movImm(rLog, static_cast<std::int64_t>(log.base));
    b.movImm(rRng, static_cast<std::int64_t>(p.seed | 1));
    b.movImm(rI, 0);
    b.movImm(rN, static_cast<std::int64_t>(p.ops));
    b.movImm(rLogPos, 0);
    b.movImm(rAcc, 0);
    b.br(header);

    b.setBlock(header);
    b.cmpUlt(rT0, rI, rN);
    b.condBr(rT0, body, exit);

    b.setBlock(body);
    b.binOpImm(Opcode::Mul, rRng, rRng, kLcgA);
    b.addImm(rRng, rRng, kLcgC);
    b.shrImm(rKey, rRng, 17);
    // hash: idx = (key * phi) >> s & mask, byte-scaled
    b.binOpImm(Opcode::Mul, rIdx, rKey, 0x9e3779b97f4a7c15LL);
    b.shrImm(rIdx, rIdx, 29);
    b.andImm(rIdx, rIdx,
             static_cast<std::int64_t>((p.buckets - 1) * 8) & ~7LL);
    // read-vs-insert decision from the key's low bits
    b.andImm(rT0, rKey, 127);
    b.cmpUltImm(rT0, rT0, (127 * p.readPct) / 100);
    b.condBr(rT0, do_lookup, do_insert);

    b.setBlock(do_lookup);
    b.add(rT1, rVals, rIdx);
    b.load(rT2, rT1);
    b.add(rAcc, rAcc, rT2);
    b.br(next);

    b.setBlock(do_insert);
    // WHISPER-style persistent insert: key cell, value cell, and an
    // append-only operation log entry (3 stores).
    b.add(rT1, rKeys, rIdx);
    b.store(rKey, rT1);
    b.add(rT1, rVals, rIdx);
    b.xorOp(rT2, rKey, rRng);
    b.store(rT2, rT1);
    b.addImm(rLogPos, rLogPos, 8);
    b.andImm(rLogPos, rLogPos,
             static_cast<std::int64_t>((p.logWords - 1) * 8) & ~7LL);
    b.add(rT1, rLog, rLogPos);
    b.store(rKey, rT1);
    b.br(next);

    b.setBlock(next);
    b.addImm(rI, rI, 1);
    b.br(header);

    b.setBlock(exit);
    b.movImm(rT0, static_cast<std::int64_t>(m.global("result").base));
    b.store(rAcc, rT0);
    b.ret(rAcc);

    ir::verifyOrDie(m);
    return mod;
}

std::unique_ptr<ir::Module>
buildNBodyKernel(const NBodyParams &p)
{
    auto mod = std::make_unique<ir::Module>();
    ir::Module &m = *mod;
    auto &pos = m.addGlobal("pos", p.particles * 8);
    auto &force = m.addGlobal("force", p.particles * 8);
    m.addGlobal("result", 64);
    m.layoutMemory();

    ir::FuncId leaf = addLeaf(m);

    auto &f = m.addFunction("main", 0);
    IRBuilder b(f);
    BlockId entry = b.newBlock();
    BlockId t_hdr = b.newBlock();
    BlockId p_hdr = b.newBlock();
    BlockId p_body = b.newBlock();
    BlockId p_latch = b.newBlock();
    BlockId t_latch = b.newBlock();
    BlockId exit = b.newBlock();

    const Reg rPos = 8, rForce = 9, rT = 10, rTN = 11, rP = 12,
              rPN = 13, rAcc = 15, rT0 = 16, rT1 = 17, rT2 = 18,
              rMyPos = 19, rLeaf = 29;
    Reg derived[3] = {21, 22, 23};

    b.setBlock(entry);
    b.movImm(rPos, static_cast<std::int64_t>(pos.base));
    b.movImm(rForce, static_cast<std::int64_t>(force.base));
    b.movImm(rT, 0);
    b.movImm(rTN, static_cast<std::int64_t>(p.timesteps));
    b.movImm(rAcc, 0);
    b.br(t_hdr);

    b.setBlock(t_hdr);
    b.cmpUlt(rT0, rT, rTN);
    b.condBr(rT0, p_hdr, exit);

    b.setBlock(p_hdr);
    b.movImm(rP, 0);
    b.movImm(rPN, static_cast<std::int64_t>(p.particles));
    b.br(p_body);

    b.setBlock(p_body);
    b.cmpUlt(rT0, rP, rPN);
    b.condBr(rT0, p_latch, t_latch);

    b.setBlock(p_latch);
    b.shlImm(rT0, rP, 3);
    b.add(rT1, rPos, rT0);
    b.load(rMyPos, rT1);
    // Neighbor interactions: strided loads plus compute.
    for (std::uint32_t k = 0; k < p.neighbors; ++k) {
        b.addImm(rT2, rP, static_cast<std::int64_t>(k + 1));
        b.andImm(rT2, rT2,
                 static_cast<std::int64_t>(p.particles - 1));
        b.shlImm(rT2, rT2, 3);
        b.add(rT2, rPos, rT2);
        b.load(rT2, rT2);
        b.sub(rT2, rT2, rMyPos);
        b.binOpImm(Opcode::Mul, rT2, rT2, 7);
        b.shrImm(rT1, rT2, 11);
        b.xorOp(rT2, rT2, rT1);
        b.add(rAcc, rAcc, rT2);
    }
    // Prunable derived values, live across the leaf call.
    std::uint32_t nd = std::min(p.prunableDerived, 3u);
    for (std::uint32_t d = 0; d < nd; ++d) {
        b.addImm(derived[d], rForce,
                 static_cast<std::int64_t>(d * 16 + 8));
    }
    b.call(rLeaf, leaf, {rAcc});
    b.add(rAcc, rAcc, rLeaf);
    for (std::uint32_t d = 0; d < nd; ++d) {
        b.load(rT2, derived[d]);
        b.add(rAcc, rAcc, rT2);
    }
    // One force store per particle.
    b.shlImm(rT0, rP, 3);
    b.add(rT1, rForce, rT0);
    b.store(rAcc, rT1);
    b.addImm(rP, rP, 1);
    b.br(p_body);

    b.setBlock(t_latch);
    b.addImm(rT, rT, 1);
    b.br(t_hdr);

    b.setBlock(exit);
    b.movImm(rT0, static_cast<std::int64_t>(m.global("result").base));
    b.store(rAcc, rT0);
    b.ret(rAcc);

    ir::verifyOrDie(m);
    return mod;
}

std::unique_ptr<ir::Module>
buildTreeSearchKernel(const TreeSearchParams &p)
{
    cwsp_assert(isPow2(p.nodes), "tree nodes must be a power of two");

    auto mod = std::make_unique<ir::Module>();
    ir::Module &m = *mod;
    auto &nodes = m.addGlobal("nodes", p.nodes * 8);
    auto &visited = m.addGlobal("visited", p.nodes * 8);
    m.addGlobal("result", 64);
    m.layoutMemory();

    ir::FuncId leaf = addLeaf(m);

    auto &f = m.addFunction("main", 0);
    IRBuilder b(f);
    BlockId entry = b.newBlock();
    BlockId q_hdr = b.newBlock();
    BlockId q_body = b.newBlock();
    BlockId d_hdr = b.newBlock();
    BlockId d_left = b.newBlock();
    BlockId d_right = b.newBlock();
    BlockId d_next = b.newBlock();
    BlockId q_end = b.newBlock();
    BlockId exit = b.newBlock();

    const Reg rNodes = 8, rVis = 9, rRng = 10, rQ = 11, rQN = 12,
              rIdx = 13, rD = 14, rAcc = 15, rT0 = 16, rT1 = 17,
              rT2 = 18, rKey = 19, rLeaf = 29;

    b.setBlock(entry);
    b.movImm(rNodes, static_cast<std::int64_t>(nodes.base));
    b.movImm(rVis, static_cast<std::int64_t>(visited.base));
    b.movImm(rRng, static_cast<std::int64_t>(p.seed | 1));
    b.movImm(rQ, 0);
    b.movImm(rQN, static_cast<std::int64_t>(p.queries));
    b.movImm(rAcc, 0);
    b.br(q_hdr);

    b.setBlock(q_hdr);
    b.cmpUlt(rT0, rQ, rQN);
    b.condBr(rT0, q_body, exit);

    b.setBlock(q_body);
    b.binOpImm(Opcode::Mul, rRng, rRng, kLcgA);
    b.addImm(rRng, rRng, kLcgC);
    b.shrImm(rKey, rRng, 13);
    b.movImm(rIdx, 1);
    b.movImm(rD, 0);
    b.br(d_hdr);

    // Descent: two tree levels per loop iteration, each with a
    // data-dependent diamond (game-tree profile: short branchy blocks
    // within ~20-instruction recoverable regions).
    b.setBlock(d_hdr);
    b.cmpUltImm(rT0, rD, p.depth);
    b.condBr(rT0, d_left, q_end);
    {
        BlockId cur = d_left;
        for (int lvl = 0; lvl < 2; ++lvl) {
            b.setBlock(cur);
            // Scatter the logical node id over the whole table so a
            // deep tree's footprint is not just the top levels.
            b.binOpImm(Opcode::Mul, rT0, rIdx,
                       0x9e3779b97f4a7c15LL);
            b.shrImm(rT0, rT0, 17);
            b.andImm(rT0, rT0,
                     static_cast<std::int64_t>((p.nodes - 1) * 8) &
                         ~7LL);
            b.add(rT0, rNodes, rT0);
            b.load(rT1, rT0);
            // Branch on a key bit (the table itself is cold data):
            // every query walks a different root-to-leaf path.
            b.andImm(rT2, rKey, 1);
            b.shrImm(rKey, rKey, 1);
            b.shlImm(rIdx, rIdx, 1);
            b.addImm(rIdx, rIdx, 1);
            b.add(rIdx, rIdx, rT2);
            BlockId taken = (lvl == 0) ? d_right : b.newBlock();
            BlockId fall = (lvl == 0) ? d_next : b.newBlock();
            BlockId join = b.newBlock();
            b.condBr(rT2, taken, fall);

            b.setBlock(taken);
            b.xorOp(rKey, rKey, rT1);
            b.shrImm(rKey, rKey, 1);
            b.br(join);

            b.setBlock(fall);
            b.addImm(rKey, rKey, 0x5bd1);
            b.br(join);

            b.setBlock(join);
            if (lvl == 1) {
                b.addImm(rD, rD, 2);
                b.br(d_hdr);
            } else {
                cur = b.newBlock();
                b.br(cur);
            }
        }
    }

    b.setBlock(q_end);
    b.add(rAcc, rAcc, rIdx);
    // Occasionally evaluate the leaf position via a call (region
    // boundary); most queries resolve inline.
    b.andImm(rT0, rQ,
             static_cast<std::int64_t>(p.callEvery - 1));
    b.cmpEqImm(rT0, rT0, 0);
    BlockId call_blk = b.newBlock();
    BlockId after_call = b.newBlock();
    b.condBr(rT0, call_blk, after_call);

    b.setBlock(call_blk);
    b.call(rLeaf, leaf, {rIdx});
    b.add(rAcc, rAcc, rLeaf);
    b.br(after_call);

    b.setBlock(after_call);
    // Occasional visited-table update.
    b.andImm(rT0, rQ, static_cast<std::int64_t>(p.storeEvery - 1));
    b.cmpEqImm(rT0, rT0, 0);
    BlockId store_blk = b.newBlock();
    BlockId cont = b.newBlock();
    b.condBr(rT0, store_blk, cont);

    b.setBlock(store_blk);
    b.andImm(rT0, rIdx, static_cast<std::int64_t>(p.nodes - 1));
    b.shlImm(rT0, rT0, 3);
    b.add(rT0, rVis, rT0);
    b.store(rAcc, rT0);
    b.br(cont);

    b.setBlock(cont);
    b.addImm(rQ, rQ, 1);
    b.br(q_hdr);

    b.setBlock(exit);
    b.movImm(rT0, static_cast<std::int64_t>(m.global("result").base));
    b.store(rAcc, rT0);
    b.ret(rAcc);

    ir::verifyOrDie(m);
    return mod;
}

std::unique_ptr<ir::Module>
buildAtomicMixKernel(const AtomicMixParams &p)
{
    cwsp_assert(isPow2(p.tableWords) && isPow2(p.counters),
                "atomicmix sizes must be powers of two");

    auto mod = std::make_unique<ir::Module>();
    ir::Module &m = *mod;
    auto &table = m.addGlobal("table", p.tableWords * 8);
    auto &tableW = m.addGlobal("table_w", p.tableWords * 8);
    auto &counters = m.addGlobal("counters", p.counters * 8);
    m.addGlobal("result", 64);
    m.layoutMemory();

    auto &f = m.addFunction("main", 0);
    IRBuilder b(f);
    BlockId entry = b.newBlock();
    BlockId header = b.newBlock();
    BlockId body = b.newBlock();
    BlockId exit = b.newBlock();

    const Reg rTab = 8, rCnt = 9, rRng = 10, rI = 11, rN = 12,
              rAcc = 15, rT0 = 16, rT1 = 17, rT2 = 18, rOne = 19,
              rTabW = 13;

    b.setBlock(entry);
    b.movImm(rTab, static_cast<std::int64_t>(table.base));
    b.movImm(rTabW, static_cast<std::int64_t>(tableW.base));
    b.movImm(rCnt, static_cast<std::int64_t>(counters.base));
    b.movImm(rRng, static_cast<std::int64_t>(p.seed | 1));
    b.movImm(rI, 0);
    b.movImm(rN, static_cast<std::int64_t>(p.txs));
    b.movImm(rAcc, 0);
    b.movImm(rOne, 1);
    b.br(header);

    b.setBlock(header);
    b.cmpUlt(rT0, rI, rN);
    b.condBr(rT0, body, exit);

    b.setBlock(body);
    // A "transaction": several table reads/writes, then an atomic
    // commit counter update (a synchronization point → persist drain).
    for (std::uint32_t k = 0; k < p.opsPerTx; ++k) {
        b.binOpImm(Opcode::Mul, rRng, rRng, kLcgA);
        b.addImm(rRng, rRng, kLcgC);
        b.shrImm(rT0, rRng, 21);
        b.andImm(rT0, rT0,
                 static_cast<std::int64_t>((p.tableWords - 1) * 8) &
                     ~7LL);
        if (k % 2 == 0) {
            b.add(rT1, rTab, rT0);
            b.load(rT2, rT1);
            b.add(rAcc, rAcc, rT2);
        } else {
            b.add(rT1, rTabW, rT0);
            b.store(rAcc, rT1);
        }
    }
    b.shrImm(rT0, rRng, 45);
    b.andImm(rT0, rT0,
             static_cast<std::int64_t>((p.counters - 1) * 8) & ~7LL);
    b.add(rT1, rCnt, rT0);
    b.atomicAdd(rT2, rOne, rT1);
    b.add(rAcc, rAcc, rT2);
    b.addImm(rI, rI, 1);
    b.br(header);

    b.setBlock(exit);
    b.movImm(rT0, static_cast<std::int64_t>(m.global("result").base));
    b.store(rAcc, rT0);
    b.ret(rAcc);

    ir::verifyOrDie(m);
    return mod;
}

std::unique_ptr<ir::Module>
buildParallelKernel(const ParallelParams &p)
{
    // Slices are tid-strided, so any worker count >= 1 partitions
    // cleanly; the in-slice offsets and the sync-point selector are
    // mask-derived, so those two parameters must be powers of two —
    // fail loudly instead of silently aliasing slices.
    cwsp_assert(p.numWorkers >= 1,
                "parallel kernel needs at least one worker");
    cwsp_assert(isPow2(p.wordsPerWorker),
                "parallel wordsPerWorker must be a power of two "
                "(in-slice offsets are mask-derived)");
    cwsp_assert(p.atomicEvery <= 1 || isPow2(p.atomicEvery),
                "parallel atomicEvery must be a power of two "
                "(sync points are mask-selected)");
    auto mod = std::make_unique<ir::Module>();
    ir::Module &m = *mod;
    auto &data = m.addGlobal("data",
                             p.wordsPerWorker * p.numWorkers * 8);
    auto &shared = m.addGlobal("shared", 64);
    m.addGlobal("result", 64);
    m.layoutMemory();

    // worker(tid): writes its own slice, bumps the shared counter
    // atomically — data-race-free, deterministic final state.
    auto &f = m.addFunction("worker", 1);
    IRBuilder b(f);
    BlockId entry = b.newBlock();
    BlockId header = b.newBlock();
    BlockId body = b.newBlock();
    BlockId exit = b.newBlock();

    const Reg rTid = 0, rData = 8, rShared = 9, rI = 10, rN = 11,
              rBase = 12, rAcc = 15, rT0 = 16, rT1 = 17, rOne = 19;

    b.setBlock(entry);
    b.movImm(rData, static_cast<std::int64_t>(data.base));
    b.movImm(rShared, static_cast<std::int64_t>(shared.base));
    b.movImm(rI, 0);
    b.movImm(rN, static_cast<std::int64_t>(p.itersPerWorker));
    b.movImm(rAcc, 0);
    b.movImm(rOne, 1);
    b.binOpImm(Opcode::Mul, rBase, rTid,
               static_cast<std::int64_t>(p.wordsPerWorker * 8));
    b.add(rBase, rData, rBase);
    b.br(header);

    b.setBlock(header);
    b.cmpUlt(rT0, rI, rN);
    b.condBr(rT0, body, exit);

    b.setBlock(body);
    // A burst of back-to-back stores into this worker's slice...
    for (std::uint32_t k = 0; k < std::max(1u, p.storesPerBurst);
         ++k) {
        b.addImm(rT0, rI, static_cast<std::int64_t>(k * 7));
        b.binOpImm(Opcode::Mul, rT0, rT0, 0x9e3779b97f4a7c15LL);
        b.shrImm(rT0, rT0, 40);
        b.andImm(rT0, rT0,
                 static_cast<std::int64_t>((p.wordsPerWorker - 1) *
                                           8) &
                     ~7LL);
        b.add(rT1, rBase, rT0);
        b.load(rT0, rT1);
        b.add(rT0, rT0, rI);
        b.store(rT0, rT1);
        b.add(rAcc, rAcc, rT0);
    }
    // ...then a quiet compute gap (bursty WPQ pressure, Fig. 26).
    for (std::uint32_t k = 0; k < p.computeOps; ++k) {
        b.shrImm(rT0, rAcc, 7);
        b.xorOp(rAcc, rAcc, rT0);
    }
    if (p.atomicEvery <= 1) {
        b.atomicAdd(rT0, rOne, rShared);
        b.addImm(rI, rI, 1);
        b.br(header);
    } else {
        BlockId do_atomic = b.newBlock();
        BlockId next_iter = b.newBlock();
        b.andImm(rT0, rI,
                 static_cast<std::int64_t>(p.atomicEvery - 1));
        b.cmpEqImm(rT0, rT0, 0);
        b.condBr(rT0, do_atomic, next_iter);
        b.setBlock(do_atomic);
        b.atomicAdd(rT0, rOne, rShared);
        b.br(next_iter);
        b.setBlock(next_iter);
        b.addImm(rI, rI, 1);
        b.br(header);
    }

    b.setBlock(exit);
    b.ret(rAcc);

    ir::verifyOrDie(m);
    return mod;
}

} // namespace cwsp::workloads
