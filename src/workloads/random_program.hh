/**
 * @file
 * Random-program generation for property testing. Produces small,
 * always-terminating IR modules with random control flow (counted
 * loops, diamonds, calls), random ALU dataflow, and random memory
 * traffic — the adversarial inputs that shake out corner cases in
 * region formation, checkpoint pruning, and the recovery protocol.
 *
 * Programs are constructed so that every register is initialized
 * before use and every loop has a bounded trip count, so a generated
 * program always runs to completion deterministically.
 */

#ifndef CWSP_WORKLOADS_RANDOM_PROGRAM_HH
#define CWSP_WORKLOADS_RANDOM_PROGRAM_HH

#include <memory>

#include "ir/ir.hh"

namespace cwsp::workloads {

/** Knobs for the generator. */
struct RandomProgramParams
{
    std::uint64_t seed = 1;
    std::uint32_t segments = 12;     ///< top-level code segments
    std::uint32_t maxLoopTrip = 6;   ///< counted-loop bound
    std::uint32_t maxLeafFuncs = 3;  ///< callable helper functions
    std::uint32_t globalWords = 64;  ///< size of each memory object
    bool allowAtomics = true;
    bool allowCalls = true;
};

/** Generate a module with a `main` entry (laid out, verified). */
std::unique_ptr<ir::Module>
buildRandomProgram(const RandomProgramParams &params);

} // namespace cwsp::workloads

#endif // CWSP_WORKLOADS_RANDOM_PROGRAM_HH
