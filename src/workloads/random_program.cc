#include "workloads/random_program.hh"

#include <vector>

#include "ir/builder.hh"
#include "ir/verifier.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace cwsp::workloads {

namespace {

using ir::BlockId;
using ir::IRBuilder;
using ir::Opcode;
using ir::Reg;

/** Registers the generator may define/use as scratch. */
constexpr Reg kFirstGp = 10;
constexpr Reg kLastGp = 27;

/** Fixed roles. */
constexpr Reg kBaseA = 8; ///< base of global a (never redefined)
constexpr Reg kBaseB = 9; ///< base of global b (never redefined)

class Generator
{
  public:
    Generator(const RandomProgramParams &params)
        : params_(params), rng_(params.seed * 0x9e3779b97f4a7c15ULL + 1)
    {
    }

    std::unique_ptr<ir::Module> run();

  private:
    RandomProgramParams params_;
    Rng rng_;
    ir::Module *mod_ = nullptr;
    std::vector<ir::FuncId> leaves_;

    Reg
    anyGp()
    {
        return static_cast<Reg>(
            kFirstGp + rng_.nextBelow(kLastGp - kFirstGp + 1));
    }

    /** A random ALU op writing a random register. */
    void
    emitAlu(IRBuilder &b)
    {
        static const Opcode ops[] = {
            Opcode::Add,  Opcode::Sub, Opcode::Mul, Opcode::And,
            Opcode::Or,   Opcode::Xor, Opcode::Shl, Opcode::Shr,
            Opcode::CmpEq, Opcode::CmpUlt,
        };
        Opcode op = ops[rng_.nextBelow(std::size(ops))];
        Reg dst = anyGp();
        Reg a = anyGp();
        if (rng_.nextBool(0.5)) {
            std::int64_t imm =
                static_cast<std::int64_t>(rng_.nextBelow(64));
            if (op == Opcode::Shl || op == Opcode::Shr)
                imm &= 7;
            b.binOpImm(op, dst, a, imm);
        } else {
            b.binOp(op, dst, a, anyGp());
        }
    }

    /** dst = masked word offset derived from a random register. */
    Reg
    emitOffset(IRBuilder &b, Reg scratch)
    {
        b.andImm(scratch, anyGp(),
                 static_cast<std::int64_t>(
                     (params_.globalWords - 1) * 8) &
                     ~7LL);
        return scratch;
    }

    void
    emitMemory(IRBuilder &b)
    {
        Reg base = rng_.nextBool(0.5) ? kBaseA : kBaseB;
        Reg addr = anyGp();
        if (rng_.nextBool(0.5)) {
            // Constant offset.
            auto off = static_cast<std::int64_t>(
                rng_.nextBelow(params_.globalWords) * 8);
            if (rng_.nextBool(0.5))
                b.load(anyGp(), base, off);
            else
                b.store(anyGp(), base, off);
        } else {
            // Computed offset (may-alias with everything on its base).
            Reg off = emitOffset(b, addr);
            Reg ptr = anyGp();
            b.add(ptr, base, off);
            if (rng_.nextBool(0.5))
                b.load(anyGp(), ptr);
            else
                b.store(anyGp(), ptr);
        }
    }

    void
    emitAtomic(IRBuilder &b)
    {
        Reg base = rng_.nextBool(0.5) ? kBaseA : kBaseB;
        auto off = static_cast<std::int64_t>(
            rng_.nextBelow(params_.globalWords) * 8);
        if (rng_.nextBool(0.5))
            b.atomicAdd(anyGp(), anyGp(), base, off);
        else
            b.atomicXchg(anyGp(), anyGp(), base, off);
    }

    /** A short straight-line body used inside loops and diamonds. */
    void
    emitStraightLine(IRBuilder &b, std::uint32_t ops)
    {
        for (std::uint32_t k = 0; k < ops; ++k) {
            double p = rng_.nextDouble();
            if (p < 0.55)
                emitAlu(b);
            else
                emitMemory(b);
        }
    }

    /**
     * Counted loop: trip count fixed at build time; @p depth selects
     * the dedicated counter register (r29 outer, r28 inner) so nested
     * random bodies can never clobber a live trip counter.
     */
    void
    emitLoop(ir::Function &f, IRBuilder &b, int depth = 0)
    {
        std::uint64_t trips = 1 + rng_.nextBelow(params_.maxLoopTrip);
        const Reg counter = static_cast<Reg>(29 - depth);
        constexpr Reg cond = 30;

        BlockId hdr = b.newBlock();
        BlockId body = b.newBlock();
        BlockId next = b.newBlock();
        b.movImm(counter, static_cast<std::int64_t>(trips));
        b.br(hdr);

        b.setBlock(hdr);
        b.cmpUltImm(cond, counter, 1); // counter < 1 -> exit
        b.condBr(cond, next, body);

        b.setBlock(body);
        emitStraightLine(b, 2 + rng_.nextBelow(6));
        // Structured randomness inside the body: a diamond, a call,
        // or (for outer loops) one nested counted loop.
        double p = rng_.nextDouble();
        if (p < 0.25) {
            emitDiamond(b);
        } else if (p < 0.40 && params_.allowCalls) {
            emitCall(b);
        } else if (p < 0.50 && depth == 0) {
            emitLoop(f, b, 1);
        }
        // Guarantee progress regardless of what the random body did
        // to other registers.
        b.binOpImm(Opcode::Sub, counter, counter, 1);
        b.br(hdr);

        b.setBlock(next);
        (void)f;
    }

    void
    emitDiamond(IRBuilder &b)
    {
        Reg cond = anyGp();
        BlockId taken = b.newBlock();
        BlockId fall = b.newBlock();
        BlockId join = b.newBlock();
        b.condBr(cond, taken, fall);
        b.setBlock(taken);
        emitStraightLine(b, 1 + rng_.nextBelow(4));
        b.br(join);
        b.setBlock(fall);
        emitStraightLine(b, 1 + rng_.nextBelow(4));
        b.br(join);
        b.setBlock(join);
    }

    void
    emitCall(IRBuilder &b)
    {
        if (leaves_.empty())
            return;
        ir::FuncId callee =
            leaves_[rng_.nextBelow(leaves_.size())];
        unsigned arity = mod_->function(callee).numParams();
        std::vector<Reg> args;
        for (unsigned k = 0; k < arity; ++k)
            args.push_back(anyGp());
        b.call(anyGp(), callee, std::move(args));
    }

    void
    makeLeaf(unsigned arity)
    {
        auto &f = mod_->addFunction(
            "leaf" + std::to_string(leaves_.size()), arity);
        IRBuilder b(f);
        b.setBlock(b.newBlock());
        // Parameters land in r0..arity-1; mix them into a result.
        b.movImm(2, 0x5bd1);
        for (unsigned k = 0; k < arity; ++k)
            b.xorOp(2, 2, static_cast<Reg>(k));
        if (rng_.nextBool(0.4)) {
            // A leaf with memory traffic of its own.
            b.andImm(3, 2,
                     static_cast<std::int64_t>(
                         (params_.globalWords - 1) * 8) &
                         ~7LL);
            b.movImm(4, static_cast<std::int64_t>(
                            mod_->global("b").base));
            b.add(4, 4, 3);
            b.load(5, 4);
            b.add(2, 2, 5);
            if (rng_.nextBool(0.5))
                b.store(2, 4);
        }
        b.shrImm(3, 2, 3);
        b.xorOp(2, 2, 3);
        b.ret(2);
        leaves_.push_back(f.id());
    }
};

std::unique_ptr<ir::Module>
Generator::run()
{
    auto mod = std::make_unique<ir::Module>();
    mod_ = mod.get();
    auto &ga = mod->addGlobal("a", params_.globalWords * 8);
    auto &gb = mod->addGlobal("b", params_.globalWords * 8);
    mod->addGlobal("out", 64);
    mod->layoutMemory();

    if (params_.allowCalls) {
        std::uint32_t n =
            1 + rng_.nextBelow(params_.maxLeafFuncs);
        for (std::uint32_t k = 0; k < n; ++k)
            makeLeaf(1 + static_cast<unsigned>(rng_.nextBelow(3)));
    }

    auto &f = mod->addFunction("main", 0);
    IRBuilder b(f);
    b.setBlock(b.newBlock());

    // Initialize every general-purpose register and the two bases so
    // random dataflow never reads poison.
    b.movImm(kBaseA, static_cast<std::int64_t>(ga.base));
    b.movImm(kBaseB, static_cast<std::int64_t>(gb.base));
    for (Reg r = kFirstGp; r <= kLastGp; ++r) {
        b.movImm(r, static_cast<std::int64_t>(
                        rng_.next() & 0xffff));
    }

    for (std::uint32_t s = 0; s < params_.segments; ++s) {
        double p = rng_.nextDouble();
        if (p < 0.35) {
            emitStraightLine(b, 3 + rng_.nextBelow(8));
        } else if (p < 0.60) {
            emitLoop(f, b);
        } else if (p < 0.78) {
            emitDiamond(b);
        } else if (p < 0.92 && params_.allowCalls) {
            emitCall(b);
        } else if (params_.allowAtomics) {
            emitAtomic(b);
        } else {
            emitStraightLine(b, 2);
        }
    }

    // Fold a visible result into `out` so final state depends on the
    // whole computation.
    Reg acc = kFirstGp;
    for (Reg r = kFirstGp + 1; r <= kLastGp; ++r)
        b.xorOp(acc, acc, r);
    Reg addr = static_cast<Reg>(kLastGp + 1); // r28 scratch
    b.movImm(addr, static_cast<std::int64_t>(
                       mod->global("out").base));
    b.store(acc, addr);
    b.ret(acc);

    ir::verifyOrDie(*mod);
    return mod;
}

} // namespace

std::unique_ptr<ir::Module>
buildRandomProgram(const RandomProgramParams &params)
{
    return Generator(params).run();
}

} // namespace cwsp::workloads
