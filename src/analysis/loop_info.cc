#include "analysis/loop_info.hh"

#include <algorithm>
#include <map>

namespace cwsp::analysis {

LoopInfo::LoopInfo(const Cfg &cfg, const Dominators &doms)
{
    const std::size_t n = cfg.numBlocks();
    isHeader_.assign(n, false);
    depth_.assign(n, 0);

    // Collect back edges (u -> h where h dominates u) grouped by header.
    std::map<ir::BlockId, std::vector<ir::BlockId>> latches;
    for (std::size_t u = 0; u < n; ++u) {
        auto ub = static_cast<ir::BlockId>(u);
        if (!doms.reachable(ub))
            continue;
        for (ir::BlockId s : cfg.successors(ub)) {
            if (doms.dominates(s, ub))
                latches[s].push_back(ub);
        }
    }

    for (auto &[header, latch_list] : latches) {
        Loop loop;
        loop.header = header;
        isHeader_[header] = true;

        // Standard natural-loop body discovery: walk predecessors
        // backwards from each latch until the header.
        std::vector<bool> in_loop(n, false);
        in_loop[header] = true;
        std::vector<ir::BlockId> work(latch_list);
        while (!work.empty()) {
            ir::BlockId b = work.back();
            work.pop_back();
            if (in_loop[b])
                continue;
            in_loop[b] = true;
            for (ir::BlockId p : cfg.predecessors(b))
                work.push_back(p);
        }
        for (std::size_t b = 0; b < n; ++b) {
            if (in_loop[b]) {
                loop.blocks.push_back(static_cast<ir::BlockId>(b));
                ++depth_[b];
            }
        }
        loops_.push_back(std::move(loop));
    }
}

} // namespace cwsp::analysis
