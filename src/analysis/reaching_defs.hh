/**
 * @file
 * Reaching definitions per register. The checkpoint-pruning pass needs
 * to know, for a register live at a region boundary, whether a unique
 * static definition produces its value there — that is what makes the
 * value rematerializable in a recovery slice.
 */

#ifndef CWSP_ANALYSIS_REACHING_DEFS_HH
#define CWSP_ANALYSIS_REACHING_DEFS_HH

#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"

namespace cwsp::analysis {

/** Identifier of a definition site; kParamDef marks "function entry". */
using DefId = std::uint32_t;
constexpr DefId kNoDef = ~DefId{0};

/** Reaching-definition sets per register per program point. */
class ReachingDefs
{
  public:
    explicit ReachingDefs(const Cfg &cfg);

    /** Position of definition @p d; block==kNoBlock for entry defs. */
    ir::InstrRef defSite(DefId d) const { return sites_[d]; }

    /** True when @p d is the implicit entry definition of a register. */
    bool isEntryDef(DefId d) const { return sites_[d].block == ir::kNoBlock; }

    /**
     * Definitions of register @p r reaching the point just before
     * instruction @p idx of block @p b.
     */
    std::vector<DefId> reachingAt(ir::BlockId b, std::uint32_t idx,
                                  ir::Reg r) const;

    /**
     * The unique definition of @p r reaching (b, idx), or kNoDef when
     * zero or multiple definitions reach.
     */
    DefId uniqueReachingAt(ir::BlockId b, std::uint32_t idx,
                           ir::Reg r) const;

  private:
    const Cfg *cfg_;
    std::vector<ir::InstrRef> sites_;           ///< DefId -> position
    std::vector<std::vector<DefId>> defsOfReg_; ///< per reg, all DefIds
    /// reachIn_[b][r]: sorted DefIds of r reaching block b's entry.
    std::vector<std::vector<std::vector<DefId>>> reachIn_;

    /** Last definition of @p r in block @p b strictly before @p idx. */
    DefId lastLocalDefBefore(ir::BlockId b, std::uint32_t idx,
                             ir::Reg r) const;
};

} // namespace cwsp::analysis

#endif // CWSP_ANALYSIS_REACHING_DEFS_HH
