#include "analysis/reaching_defs.hh"

#include <algorithm>
#include <array>

#include "sim/logging.hh"

namespace cwsp::analysis {

namespace {

/** Merge sorted @p src into sorted @p dst; @return true if dst grew. */
bool
mergeSorted(std::vector<DefId> &dst, const std::vector<DefId> &src)
{
    bool grew = false;
    for (DefId d : src) {
        auto it = std::lower_bound(dst.begin(), dst.end(), d);
        if (it == dst.end() || *it != d) {
            dst.insert(it, d);
            grew = true;
        }
    }
    return grew;
}

} // namespace

ReachingDefs::ReachingDefs(const Cfg &cfg) : cfg_(&cfg)
{
    const auto &func = cfg.function();
    const std::size_t n = cfg.numBlocks();
    defsOfReg_.resize(ir::kNumRegs);

    // Implicit entry definitions: parameters r0..k-1 plus the frame
    // pointer r31 are defined at function entry; model every register
    // as entry-defined so that uninitialized reads still have a
    // (non-rematerializable) reaching def instead of none.
    std::vector<DefId> entry_defs(ir::kNumRegs);
    for (ir::Reg r = 0; r < ir::kNumRegs; ++r) {
        entry_defs[r] = static_cast<DefId>(sites_.size());
        sites_.push_back(ir::InstrRef{ir::kNoBlock, r});
        defsOfReg_[r].push_back(entry_defs[r]);
    }

    // Number every real definition site.
    // gen_[b][r] = DefId of last def of r in b, or kNoDef.
    std::vector<std::array<DefId, ir::kNumRegs>> gen(n);
    for (auto &g : gen)
        g.fill(kNoDef);
    for (std::size_t b = 0; b < n; ++b) {
        const auto &instrs =
            func.block(static_cast<ir::BlockId>(b)).instrs();
        for (std::uint32_t k = 0; k < instrs.size(); ++k) {
            ir::Reg d = instrs[k].defReg();
            if (d == ir::kNoReg)
                continue;
            auto id = static_cast<DefId>(sites_.size());
            sites_.push_back(
                ir::InstrRef{static_cast<ir::BlockId>(b), k});
            defsOfReg_[d].push_back(id);
            gen[b][d] = id; // later defs overwrite: keeps the last
        }
    }

    // Forward fixpoint on per-register reaching sets.
    reachIn_.assign(n, std::vector<std::vector<DefId>>(ir::kNumRegs));
    for (ir::Reg r = 0; r < ir::kNumRegs; ++r)
        reachIn_[0][r].push_back(entry_defs[r]);

    const auto &rpo = cfg.rpo();
    bool changed = true;
    while (changed) {
        changed = false;
        for (ir::BlockId b : rpo) {
            for (ir::BlockId s : cfg.successors(b)) {
                for (ir::Reg r = 0; r < ir::kNumRegs; ++r) {
                    if (gen[b][r] != kNoDef) {
                        std::vector<DefId> one{gen[b][r]};
                        if (mergeSorted(reachIn_[s][r], one))
                            changed = true;
                    } else {
                        if (mergeSorted(reachIn_[s][r], reachIn_[b][r]))
                            changed = true;
                    }
                }
            }
        }
    }
}

DefId
ReachingDefs::lastLocalDefBefore(ir::BlockId b, std::uint32_t idx,
                                 ir::Reg r) const
{
    const auto &instrs = cfg_->function().block(b).instrs();
    cwsp_assert(idx <= instrs.size(), "index out of range");
    for (std::uint32_t k = idx; k > 0; --k) {
        if (instrs[k - 1].defReg() == r) {
            // Recover the DefId by searching this register's def list.
            for (DefId d : defsOfReg_[r]) {
                const auto &s = sites_[d];
                if (s.block == b && s.index == k - 1)
                    return d;
            }
            cwsp_panic("definition site not numbered");
        }
    }
    return kNoDef;
}

std::vector<DefId>
ReachingDefs::reachingAt(ir::BlockId b, std::uint32_t idx,
                         ir::Reg r) const
{
    DefId local = lastLocalDefBefore(b, idx, r);
    if (local != kNoDef)
        return {local};
    return reachIn_[b][r];
}

DefId
ReachingDefs::uniqueReachingAt(ir::BlockId b, std::uint32_t idx,
                               ir::Reg r) const
{
    auto defs = reachingAt(b, idx, r);
    return defs.size() == 1 ? defs[0] : kNoDef;
}

} // namespace cwsp::analysis
