/**
 * @file
 * Field-insensitive alias analysis over symbolic bases. Pointer values
 * are tracked as (base object, constant offset) pairs by a forward
 * abstract interpretation of the register file; memory references then
 * compare as must/no/may alias. This mirrors the role LLVM's basic-AA
 * plays in the paper's antidependence-cutting step: exact answers for
 * global-array accesses with affine indices, conservative may-alias
 * for pointers loaded from memory (pointer chasing).
 */

#ifndef CWSP_ANALYSIS_ALIAS_ANALYSIS_HH
#define CWSP_ANALYSIS_ALIAS_ANALYSIS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"

namespace cwsp::analysis {

/** Classification of two memory references. */
enum class AliasResult { NoAlias, MayAlias, MustAlias };

/** Abstract base object a pointer may refer to. */
struct AbstractBase
{
    enum class Kind : std::uint8_t {
        Global,  ///< one of the module's global objects
        Stack,   ///< the current frame's stack area
        Ckpt,    ///< the hardware-managed checkpoint area
        Unknown, ///< anything (e.g. a pointer loaded from memory)
    };

    Kind kind = Kind::Unknown;
    std::uint32_t globalIndex = 0; ///< valid when kind == Global

    bool
    operator==(const AbstractBase &o) const
    {
        return kind == o.kind &&
               (kind != Kind::Global || globalIndex == o.globalIndex);
    }
};

/** Abstract location of one memory access. */
struct AbstractLoc
{
    AbstractBase base;
    bool offsetKnown = false;
    std::int64_t offset = 0;
};

/** Abstract value of one register at one program point. */
struct AbsVal
{
    enum class Kind : std::uint8_t {
        Bottom,  ///< no information yet (unreached)
        NonPtr,  ///< definitely not used as a pointer we can track
        Ptr,     ///< pointer into `base` at `offset` (if known)
        Top,     ///< could be anything
    };

    Kind kind = Kind::Bottom;
    AbstractBase base;
    bool offsetKnown = false;
    std::int64_t offset = 0;

    bool operator==(const AbsVal &o) const;
};

/** Alias information for one function within one module. */
class AliasAnalysis
{
  public:
    AliasAnalysis(const ir::Module &module, const Cfg &cfg);

    /**
     * Abstract location accessed by the memory instruction at
     * (@p b, @p idx). Must only be called for memory instructions.
     */
    AbstractLoc locOf(ir::BlockId b, std::uint32_t idx) const;

    /** Compare two memory instructions' accesses. */
    AliasResult alias(ir::BlockId b1, std::uint32_t i1, ir::BlockId b2,
                      std::uint32_t i2) const;

    /** Compare two abstract locations (8-byte word accesses). */
    static AliasResult alias(const AbstractLoc &x, const AbstractLoc &y);

  private:
    using RegState = std::array<AbsVal, ir::kNumRegs>;

    const ir::Module *module_;
    const Cfg *cfg_;
    std::vector<RegState> blockIn_; ///< abstract state at block entry

    /** Map a constant address to a global-based abstract value. */
    AbsVal classifyConstant(std::int64_t value) const;

    /** Apply one instruction to @p state. */
    void transfer(const ir::Instr &instr, RegState &state) const;

    /** Merge @p src into @p dst; @return true when dst changed. */
    static bool merge(RegState &dst, const RegState &src);
};

} // namespace cwsp::analysis

#endif // CWSP_ANALYSIS_ALIAS_ANALYSIS_HH
