/**
 * @file
 * Dominator tree via the Cooper-Harvey-Kennedy iterative algorithm.
 */

#ifndef CWSP_ANALYSIS_DOMINATORS_HH
#define CWSP_ANALYSIS_DOMINATORS_HH

#include <vector>

#include "analysis/cfg.hh"

namespace cwsp::analysis {

/** Immediate-dominator relation for a function's CFG. */
class Dominators
{
  public:
    explicit Dominators(const Cfg &cfg);

    /** Immediate dominator of @p b; entry's idom is itself. */
    ir::BlockId idom(ir::BlockId b) const { return idom_[b]; }

    /** @return true when @p a dominates @p b (reflexive). */
    bool dominates(ir::BlockId a, ir::BlockId b) const;

    /** @return true when @p b is reachable from the entry. */
    bool reachable(ir::BlockId b) const
    {
        return idom_[b] != ir::kNoBlock;
    }

  private:
    const Cfg *cfg_;
    std::vector<ir::BlockId> idom_;
};

} // namespace cwsp::analysis

#endif // CWSP_ANALYSIS_DOMINATORS_HH
