/**
 * @file
 * Natural-loop discovery. The cWSP compiler inserts a region boundary
 * at each loop header so that every iteration forms (at least) one
 * recoverable region (Section IV-A).
 */

#ifndef CWSP_ANALYSIS_LOOP_INFO_HH
#define CWSP_ANALYSIS_LOOP_INFO_HH

#include <vector>

#include "analysis/cfg.hh"
#include "analysis/dominators.hh"

namespace cwsp::analysis {

/** One natural loop: header plus member blocks. */
struct Loop
{
    ir::BlockId header = ir::kNoBlock;
    std::vector<ir::BlockId> blocks; ///< includes the header
};

/** All natural loops of a function (loops sharing a header merged). */
class LoopInfo
{
  public:
    LoopInfo(const Cfg &cfg, const Dominators &doms);

    const std::vector<Loop> &loops() const { return loops_; }

    /** @return true when @p b is some natural loop's header. */
    bool isHeader(ir::BlockId b) const { return isHeader_[b]; }

    /** Loop nesting depth of @p b (0 = not in any loop). */
    unsigned depth(ir::BlockId b) const { return depth_[b]; }

  private:
    std::vector<Loop> loops_;
    std::vector<bool> isHeader_;
    std::vector<unsigned> depth_;
};

} // namespace cwsp::analysis

#endif // CWSP_ANALYSIS_LOOP_INFO_HH
