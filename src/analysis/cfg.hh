/**
 * @file
 * Control-flow-graph utilities for one function: predecessor lists and
 * reverse post-order, shared by the dataflow analyses.
 */

#ifndef CWSP_ANALYSIS_CFG_HH
#define CWSP_ANALYSIS_CFG_HH

#include <vector>

#include "ir/ir.hh"

namespace cwsp::analysis {

/** Precomputed CFG edges for a function. */
class Cfg
{
  public:
    explicit Cfg(const ir::Function &func);

    const ir::Function &function() const { return *func_; }

    const std::vector<ir::BlockId> &
    successors(ir::BlockId b) const
    {
        return succs_[b];
    }

    const std::vector<ir::BlockId> &
    predecessors(ir::BlockId b) const
    {
        return preds_[b];
    }

    /** Blocks in reverse post-order from the entry (unreachable last). */
    const std::vector<ir::BlockId> &rpo() const { return rpo_; }

    /** Position of each block in rpo() (for dominator computation). */
    const std::vector<std::uint32_t> &rpoIndex() const { return rpoIdx_; }

    std::size_t numBlocks() const { return succs_.size(); }

  private:
    const ir::Function *func_;
    std::vector<std::vector<ir::BlockId>> succs_;
    std::vector<std::vector<ir::BlockId>> preds_;
    std::vector<ir::BlockId> rpo_;
    std::vector<std::uint32_t> rpoIdx_;
};

} // namespace cwsp::analysis

#endif // CWSP_ANALYSIS_CFG_HH
