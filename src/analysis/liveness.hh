/**
 * @file
 * Register liveness via backward dataflow. With 32 architectural
 * registers a live set is a single 32-bit mask, so per-point queries
 * are cheap.
 */

#ifndef CWSP_ANALYSIS_LIVENESS_HH
#define CWSP_ANALYSIS_LIVENESS_HH

#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"

namespace cwsp::analysis {

/** Set of registers as a bitmask (bit r set = r in the set). */
using RegMask = std::uint32_t;

constexpr RegMask
regBit(ir::Reg r)
{
    return RegMask{1} << r;
}

/** Iterate the registers present in @p mask. */
template <typename Fn>
void
forEachReg(RegMask mask, Fn &&fn)
{
    while (mask) {
        int r = __builtin_ctz(mask);
        fn(static_cast<ir::Reg>(r));
        mask &= mask - 1;
    }
}

/** Per-block and per-point register liveness for one function. */
class Liveness
{
  public:
    explicit Liveness(const Cfg &cfg);

    RegMask liveIn(ir::BlockId b) const { return liveIn_[b]; }
    RegMask liveOut(ir::BlockId b) const { return liveOut_[b]; }

    /**
     * Registers live immediately *before* instruction @p idx of block
     * @p b. liveBefore(b, size) gives the block's live-out set.
     */
    RegMask liveBefore(ir::BlockId b, std::uint32_t idx) const;

    /**
     * Bulk variant: live-before masks for indices 0..size of block
     * @p b (the last element is the block's live-out set).
     */
    std::vector<RegMask> liveBeforeAll(ir::BlockId b) const;

    /** Registers used by @p instr. */
    static RegMask uses(const ir::Instr &instr);
    /** Register defined by @p instr as a mask (0 if none). */
    static RegMask defs(const ir::Instr &instr);

  private:
    const Cfg *cfg_;
    std::vector<RegMask> liveIn_;
    std::vector<RegMask> liveOut_;
};

} // namespace cwsp::analysis

#endif // CWSP_ANALYSIS_LIVENESS_HH
