#include "analysis/dominators.hh"

#include "sim/logging.hh"

namespace cwsp::analysis {

Dominators::Dominators(const Cfg &cfg) : cfg_(&cfg)
{
    const std::size_t n = cfg.numBlocks();
    idom_.assign(n, ir::kNoBlock);
    if (n == 0)
        return;
    idom_[0] = 0;

    const auto &rpo = cfg.rpo();
    const auto &rpo_idx = cfg.rpoIndex();

    auto intersect = [&](ir::BlockId a, ir::BlockId b) {
        while (a != b) {
            while (rpo_idx[a] > rpo_idx[b])
                a = idom_[a];
            while (rpo_idx[b] > rpo_idx[a])
                b = idom_[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (ir::BlockId b : rpo) {
            if (b == 0)
                continue;
            ir::BlockId new_idom = ir::kNoBlock;
            for (ir::BlockId p : cfg.predecessors(b)) {
                if (idom_[p] == ir::kNoBlock)
                    continue; // predecessor not yet reachable
                new_idom = (new_idom == ir::kNoBlock)
                               ? p
                               : intersect(p, new_idom);
            }
            if (new_idom != ir::kNoBlock && idom_[b] != new_idom) {
                idom_[b] = new_idom;
                changed = true;
            }
        }
    }
}

bool
Dominators::dominates(ir::BlockId a, ir::BlockId b) const
{
    if (!reachable(b))
        return false;
    while (true) {
        if (a == b)
            return true;
        if (b == 0)
            return false;
        b = idom_[b];
    }
}

} // namespace cwsp::analysis
