#include "analysis/cfg.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cwsp::analysis {

Cfg::Cfg(const ir::Function &func) : func_(&func)
{
    const std::size_t n = func.numBlocks();
    succs_.resize(n);
    preds_.resize(n);
    for (std::size_t b = 0; b < n; ++b) {
        succs_[b] = func.block(static_cast<ir::BlockId>(b)).successors();
        for (ir::BlockId s : succs_[b])
            preds_[s].push_back(static_cast<ir::BlockId>(b));
    }

    // Iterative post-order DFS from the entry block.
    std::vector<ir::BlockId> post;
    std::vector<std::uint8_t> state(n, 0); // 0=unseen 1=on-stack 2=done
    std::vector<std::pair<ir::BlockId, std::size_t>> stack;
    if (n > 0) {
        stack.emplace_back(0, 0);
        state[0] = 1;
    }
    while (!stack.empty()) {
        auto &[b, next] = stack.back();
        if (next < succs_[b].size()) {
            ir::BlockId s = succs_[b][next++];
            if (state[s] == 0) {
                state[s] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            state[b] = 2;
            post.push_back(b);
            stack.pop_back();
        }
    }
    rpo_.assign(post.rbegin(), post.rend());
    // Unreachable blocks appended in id order so every block has an
    // RPO slot (analyses simply never propagate into them).
    for (std::size_t b = 0; b < n; ++b) {
        if (state[b] == 0)
            rpo_.push_back(static_cast<ir::BlockId>(b));
    }
    rpoIdx_.assign(n, 0);
    for (std::size_t i = 0; i < rpo_.size(); ++i)
        rpoIdx_[rpo_[i]] = static_cast<std::uint32_t>(i);
}

} // namespace cwsp::analysis
