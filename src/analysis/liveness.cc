#include "analysis/liveness.hh"

#include "sim/logging.hh"

namespace cwsp::analysis {

RegMask
Liveness::uses(const ir::Instr &instr)
{
    RegMask m = 0;
    static thread_local std::vector<ir::Reg> tmp;
    tmp.clear();
    instr.useRegs(tmp);
    for (ir::Reg r : tmp)
        m |= regBit(r);
    return m;
}

RegMask
Liveness::defs(const ir::Instr &instr)
{
    ir::Reg d = instr.defReg();
    return d == ir::kNoReg ? 0 : regBit(d);
}

Liveness::Liveness(const Cfg &cfg) : cfg_(&cfg)
{
    const std::size_t n = cfg.numBlocks();
    liveIn_.assign(n, 0);
    liveOut_.assign(n, 0);

    // Precompute per-block gen (upward-exposed uses) and kill (defs).
    std::vector<RegMask> gen(n, 0), kill(n, 0);
    for (std::size_t b = 0; b < n; ++b) {
        const auto &instrs =
            cfg.function().block(static_cast<ir::BlockId>(b)).instrs();
        RegMask defined = 0;
        for (const auto &i : instrs) {
            gen[b] |= uses(i) & ~defined;
            defined |= defs(i);
        }
        kill[b] = defined;
    }

    // Backward fixpoint, iterating blocks in reverse RPO.
    const auto &rpo = cfg.rpo();
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
            ir::BlockId b = *it;
            RegMask out = 0;
            for (ir::BlockId s : cfg.successors(b))
                out |= liveIn_[s];
            RegMask in = gen[b] | (out & ~kill[b]);
            if (out != liveOut_[b] || in != liveIn_[b]) {
                liveOut_[b] = out;
                liveIn_[b] = in;
                changed = true;
            }
        }
    }
}

RegMask
Liveness::liveBefore(ir::BlockId b, std::uint32_t idx) const
{
    const auto &instrs = cfg_->function().block(b).instrs();
    cwsp_assert(idx <= instrs.size(), "liveBefore index out of range");
    RegMask live = liveOut_[b];
    for (std::size_t k = instrs.size(); k > idx; --k) {
        const ir::Instr &i = instrs[k - 1];
        live = (live & ~defs(i)) | uses(i);
    }
    return live;
}

std::vector<RegMask>
Liveness::liveBeforeAll(ir::BlockId b) const
{
    const auto &instrs = cfg_->function().block(b).instrs();
    std::vector<RegMask> result(instrs.size() + 1);
    RegMask live = liveOut_[b];
    result[instrs.size()] = live;
    for (std::size_t k = instrs.size(); k > 0; --k) {
        const ir::Instr &i = instrs[k - 1];
        live = (live & ~defs(i)) | uses(i);
        result[k - 1] = live;
    }
    return result;
}

} // namespace cwsp::analysis
