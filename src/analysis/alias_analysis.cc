#include "analysis/alias_analysis.hh"

#include "sim/logging.hh"

namespace cwsp::analysis {

namespace {

/** The frame-pointer register convention (see interp/machine_state). */
constexpr ir::Reg kFramePointer = 31;

AbsVal
topVal()
{
    AbsVal v;
    v.kind = AbsVal::Kind::Top;
    return v;
}

AbsVal
nonPtrVal()
{
    AbsVal v;
    v.kind = AbsVal::Kind::NonPtr;
    return v;
}

} // namespace

bool
AbsVal::operator==(const AbsVal &o) const
{
    if (kind != o.kind)
        return false;
    if (kind != Kind::Ptr)
        return true;
    return base == o.base && offsetKnown == o.offsetKnown &&
           (!offsetKnown || offset == o.offset);
}

AliasAnalysis::AliasAnalysis(const ir::Module &module, const Cfg &cfg)
    : module_(&module), cfg_(&cfg)
{
    const std::size_t n = cfg.numBlocks();
    blockIn_.resize(n);

    // Entry state: the frame pointer is a stack pointer; parameters
    // could be anything (Top); everything else starts NonPtr-unknown
    // as Top too — conservative but simple. We refine only what the
    // transfer function can prove.
    RegState entry;
    for (auto &v : entry)
        v = topVal();
    {
        AbsVal fp;
        fp.kind = AbsVal::Kind::Ptr;
        fp.base.kind = AbstractBase::Kind::Stack;
        fp.offsetKnown = true;
        fp.offset = 0;
        entry[kFramePointer] = fp;
    }
    blockIn_[0] = entry;
    for (std::size_t b = 1; b < n; ++b) {
        for (auto &v : blockIn_[b])
            v.kind = AbsVal::Kind::Bottom;
    }

    // Forward fixpoint over the CFG.
    const auto &rpo = cfg.rpo();
    bool changed = true;
    while (changed) {
        changed = false;
        for (ir::BlockId b : rpo) {
            // Skip unreached blocks (all-Bottom, except the entry).
            if (b != 0 &&
                blockIn_[b][0].kind == AbsVal::Kind::Bottom) {
                bool reached = false;
                for (const auto &v : blockIn_[b]) {
                    if (v.kind != AbsVal::Kind::Bottom) {
                        reached = true;
                        break;
                    }
                }
                if (!reached)
                    continue;
            }
            RegState state = blockIn_[b];
            for (const auto &i : cfg.function().block(b).instrs())
                transfer(i, state);
            for (ir::BlockId s : cfg.successors(b)) {
                if (merge(blockIn_[s], state))
                    changed = true;
            }
        }
    }
}

AbsVal
AliasAnalysis::classifyConstant(std::int64_t value) const
{
    if (value < 0)
        return nonPtrVal();
    auto addr = static_cast<Addr>(value);
    if (addr < ir::Module::kGlobalBase)
        return nonPtrVal(); // small integers are not object addresses
    const auto &globals = module_->globals();
    for (std::uint32_t g = 0; g < globals.size(); ++g) {
        const auto &gv = globals[g];
        if (addr >= gv.base && addr < gv.base + gv.sizeBytes) {
            AbsVal v;
            v.kind = AbsVal::Kind::Ptr;
            v.base.kind = AbstractBase::Kind::Global;
            v.base.globalIndex = g;
            v.offsetKnown = true;
            v.offset = static_cast<std::int64_t>(addr - gv.base);
            return v;
        }
    }
    // A large constant that is not a known object: unknown pointer.
    return topVal();
}

void
AliasAnalysis::transfer(const ir::Instr &i, RegState &state) const
{
    using Op = ir::Opcode;
    switch (i.op) {
      case Op::MovImm:
        state[i.dst] = classifyConstant(i.imm);
        // Remember the literal for pointer arithmetic only when it is
        // not an object address; classifyConstant already captured
        // object addresses precisely.
        break;
      case Op::Mov:
        state[i.dst] = state[i.a];
        break;
      case Op::Add:
      case Op::Sub: {
        const AbsVal &av = state[i.a];
        std::int64_t sign = (i.op == Op::Sub) ? -1 : 1;
        if (av.kind == AbsVal::Kind::Ptr) {
            AbsVal v = av;
            if (i.bIsImm && av.offsetKnown) {
                v.offset += sign * i.imm;
            } else {
                v.offsetKnown = false;
            }
            state[i.dst] = v;
        } else if (!i.bIsImm && state[i.b].kind == AbsVal::Kind::Ptr &&
                   i.op == Op::Add) {
            AbsVal v = state[i.b];
            v.offsetKnown = false; // reg + ptr: offset unknown
            state[i.dst] = v;
        } else if (av.kind == AbsVal::Kind::NonPtr &&
                   (i.bIsImm ||
                    state[i.b].kind == AbsVal::Kind::NonPtr)) {
            state[i.dst] = nonPtrVal();
        } else {
            state[i.dst] = topVal();
        }
        break;
      }
      case Op::Mul:
      case Op::DivU:
      case Op::RemU:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Shl:
      case Op::Shr:
        // Arithmetic that we do not track as pointer math.
        state[i.dst] = nonPtrVal();
        break;
      case Op::CmpEq:
      case Op::CmpNe:
      case Op::CmpUlt:
      case Op::CmpSlt:
        state[i.dst] = nonPtrVal();
        break;
      case Op::Load:
      case Op::Call:
      case Op::AtomicAdd:
      case Op::AtomicXchg:
      case Op::AtomicCas:
        // Values from memory or callees: could be pointers anywhere.
        if (i.dst != ir::kNoReg)
            state[i.dst] = topVal();
        break;
      default:
        break; // stores, branches, fences, boundaries: no reg defs
    }
}

bool
AliasAnalysis::merge(RegState &dst, const RegState &src)
{
    bool changed = false;
    for (std::size_t r = 0; r < dst.size(); ++r) {
        AbsVal &d = dst[r];
        const AbsVal &s = src[r];
        if (s.kind == AbsVal::Kind::Bottom || d == s)
            continue;
        AbsVal merged;
        if (d.kind == AbsVal::Kind::Bottom) {
            merged = s;
        } else if (d.kind == AbsVal::Kind::Ptr &&
                   s.kind == AbsVal::Kind::Ptr && d.base == s.base) {
            merged = d;
            if (!(d.offsetKnown && s.offsetKnown &&
                  d.offset == s.offset)) {
                merged.offsetKnown = false;
                merged.offset = 0;
            }
        } else if (d.kind == AbsVal::Kind::NonPtr &&
                   s.kind == AbsVal::Kind::NonPtr) {
            merged = nonPtrVal();
        } else {
            merged = topVal();
        }
        if (!(merged == d)) {
            d = merged;
            changed = true;
        }
    }
    return changed;
}

AbstractLoc
AliasAnalysis::locOf(ir::BlockId b, std::uint32_t idx) const
{
    const auto &instrs = cfg_->function().block(b).instrs();
    cwsp_assert(idx < instrs.size(), "locOf index out of range");
    const ir::Instr &i = instrs[idx];
    cwsp_assert(ir::accessesMemory(i.op), "locOf on non-memory instr");

    if (i.op == ir::Opcode::Checkpoint) {
        AbstractLoc loc;
        loc.base.kind = AbstractBase::Kind::Ckpt;
        loc.offsetKnown = true;
        loc.offset = static_cast<std::int64_t>(i.a) * kWordBytes;
        return loc;
    }

    // Recompute the abstract state at idx by replaying the block.
    RegState state = blockIn_[b];
    for (std::uint32_t k = 0; k < idx; ++k)
        transfer(instrs[k], state);

    ir::Reg base_reg =
        (i.op == ir::Opcode::Load) ? i.a : i.b;
    const AbsVal &bv = state[base_reg];
    AbstractLoc loc;
    if (bv.kind == AbsVal::Kind::Ptr) {
        loc.base = bv.base;
        if (bv.offsetKnown) {
            loc.offsetKnown = true;
            loc.offset = bv.offset + i.imm;
        }
    } else {
        loc.base.kind = AbstractBase::Kind::Unknown;
    }
    return loc;
}

AliasResult
AliasAnalysis::alias(const AbstractLoc &x, const AbstractLoc &y)
{
    using K = AbstractBase::Kind;
    if (x.base.kind == K::Unknown || y.base.kind == K::Unknown)
        return AliasResult::MayAlias;
    if (!(x.base == y.base)) {
        // Distinct known bases never overlap: globals are padded to
        // cachelines and the stack/ckpt areas live in disjoint ranges.
        return AliasResult::NoAlias;
    }
    if (x.offsetKnown && y.offsetKnown) {
        // Word-sized accesses: overlap iff within 8 bytes.
        std::int64_t d = x.offset - y.offset;
        if (d == 0)
            return AliasResult::MustAlias;
        return (d > -8 && d < 8) ? AliasResult::MayAlias
                                 : AliasResult::NoAlias;
    }
    return AliasResult::MayAlias;
}

AliasResult
AliasAnalysis::alias(ir::BlockId b1, std::uint32_t i1, ir::BlockId b2,
                     std::uint32_t i2) const
{
    return alias(locOf(b1, i1), locOf(b2, i2));
}

} // namespace cwsp::analysis
