#include "ir/verifier.hh"

#include <sstream>

#include "sim/logging.hh"

namespace cwsp::ir {

namespace {

void
checkReg(Reg r, bool allow_none, const std::string &where,
         std::vector<std::string> &problems)
{
    if (r == kNoReg) {
        if (!allow_none)
            problems.push_back(where + ": missing register operand");
        return;
    }
    if (r >= kNumRegs)
        problems.push_back(where + ": register out of range");
}

void
verifyFunction(const Function &func, const Module *module,
               std::vector<std::string> &problems)
{
    auto where = [&func](std::size_t b, std::size_t k) {
        std::ostringstream os;
        os << func.name() << " bb" << b << "[" << k << "]";
        return os.str();
    };

    if (func.numBlocks() == 0) {
        problems.push_back(func.name() + ": function has no blocks");
        return;
    }

    for (std::size_t b = 0; b < func.numBlocks(); ++b) {
        const auto &blk = func.block(static_cast<BlockId>(b));
        const auto &instrs = blk.instrs();
        if (instrs.empty()) {
            problems.push_back(func.name() + " bb" + std::to_string(b) +
                               ": empty block");
            continue;
        }
        if (!isTerminator(instrs.back().op)) {
            problems.push_back(func.name() + " bb" + std::to_string(b) +
                               ": does not end in a terminator");
        }
        for (std::size_t k = 0; k < instrs.size(); ++k) {
            const Instr &i = instrs[k];
            const std::string w = where(b, k);

            if (isTerminator(i.op) && k + 1 != instrs.size())
                problems.push_back(w + ": terminator mid-block");

            switch (i.op) {
              case Opcode::MovImm:
                checkReg(i.dst, false, w, problems);
                break;
              case Opcode::Mov:
                checkReg(i.dst, false, w, problems);
                checkReg(i.a, false, w, problems);
                break;
              case Opcode::Load:
                checkReg(i.dst, false, w, problems);
                checkReg(i.a, false, w, problems);
                break;
              case Opcode::Store:
                checkReg(i.a, false, w, problems);
                checkReg(i.b, false, w, problems);
                break;
              case Opcode::Br:
                if (i.target0 >= func.numBlocks())
                    problems.push_back(w + ": bad branch target");
                break;
              case Opcode::CondBr:
                checkReg(i.a, false, w, problems);
                if (i.target0 >= func.numBlocks() ||
                    i.target1 >= func.numBlocks())
                    problems.push_back(w + ": bad branch target");
                break;
              case Opcode::Ret:
                checkReg(i.a, true, w, problems);
                break;
              case Opcode::Call: {
                checkReg(i.dst, true, w, problems);
                for (Reg r : i.args)
                    checkReg(r, false, w, problems);
                if (module) {
                    if (i.callee >= module->numFunctions()) {
                        problems.push_back(w + ": bad callee");
                    } else if (module->function(i.callee).numParams() !=
                               i.args.size()) {
                        problems.push_back(w + ": call argument count "
                                               "mismatch");
                    }
                }
                break;
              }
              case Opcode::AtomicAdd:
              case Opcode::AtomicXchg:
              case Opcode::AtomicCas:
                checkReg(i.dst, false, w, problems);
                checkReg(i.a, false, w, problems);
                checkReg(i.b, false, w, problems);
                break;
              case Opcode::Fence:
              case Opcode::Nop:
                break;
              case Opcode::RegionBoundary:
                if (func.instrumented()) {
                    auto rid = static_cast<std::uint64_t>(i.imm);
                    if (rid >= func.recoverySlices().size())
                        problems.push_back(w + ": region id without "
                                               "recovery slice");
                }
                break;
              case Opcode::Checkpoint:
              case Opcode::IoWrite:
                checkReg(i.a, false, w, problems);
                break;
              default:
                if (isBinaryAlu(i.op)) {
                    checkReg(i.dst, false, w, problems);
                    checkReg(i.a, false, w, problems);
                    if (!i.bIsImm)
                        checkReg(i.b, false, w, problems);
                } else {
                    problems.push_back(w + ": unknown opcode");
                }
                break;
            }
        }
    }
}

} // namespace

std::vector<std::string>
verify(const Function &func)
{
    std::vector<std::string> problems;
    verifyFunction(func, nullptr, problems);
    return problems;
}

std::vector<std::string>
verify(const Module &module)
{
    std::vector<std::string> problems;
    for (std::size_t f = 0; f < module.numFunctions(); ++f)
        verifyFunction(module.function(static_cast<FuncId>(f)), &module,
                       problems);
    return problems;
}

void
verifyOrDie(const Module &module)
{
    auto problems = verify(module);
    if (problems.empty())
        return;
    std::string all;
    for (const auto &p : problems)
        all += p + "; ";
    cwsp_panic("IR verification failed: ", all);
}

} // namespace cwsp::ir
