#include "ir/parser.hh"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "sim/logging.hh"

namespace cwsp::ir {

namespace {

/** Cursor over one instruction line. */
class LineLexer
{
  public:
    explicit LineLexer(std::string line) : s_(std::move(line)) {}

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (std::isspace(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == ','))
            ++pos_;
    }

    bool
    atEnd()
    {
        skipWs();
        return pos_ >= s_.size();
    }

    /** Consume one character; fatal when it is not @p c. */
    void
    expect(char c)
    {
        skipWs();
        if (pos_ >= s_.size() || s_[pos_] != c)
            cwsp_fatal("IR parse error: expected '", c, "' in: ", s_);
        ++pos_;
    }

    bool
    tryConsume(char c)
    {
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    /** An identifier-ish token: [A-Za-z0-9_.$-]+ */
    std::string
    word()
    {
        skipWs();
        std::size_t start = pos_;
        while (pos_ < s_.size()) {
            char c = s_[pos_];
            if (std::isalnum(static_cast<unsigned char>(c)) ||
                c == '_' || c == '.' || c == '$' || c == '-')
                ++pos_;
            else
                break;
        }
        if (start == pos_)
            cwsp_fatal("IR parse error: expected token in: ", s_);
        return s_.substr(start, pos_ - start);
    }

    std::int64_t
    integer()
    {
        std::string w = word();
        try {
            return static_cast<std::int64_t>(std::stoll(w, nullptr, 0));
        } catch (...) {
            cwsp_fatal("IR parse error: bad integer '", w, "' in: ",
                       s_);
        }
    }

    Reg
    reg()
    {
        skipWs();
        if (tryConsume('-'))
            return kNoReg;
        std::string w = word();
        if (w.empty() || w[0] != 'r')
            cwsp_fatal("IR parse error: expected register, got '", w,
                       "' in: ", s_);
        auto n = std::stoul(w.substr(1));
        if (n >= kNumRegs)
            cwsp_fatal("IR parse error: register out of range: ", w);
        return static_cast<Reg>(n);
    }

    BlockId
    blockRef()
    {
        std::string w = word();
        if (w.size() < 3 || w.substr(0, 2) != "bb")
            cwsp_fatal("IR parse error: expected block ref, got '", w,
                       "'");
        return static_cast<BlockId>(std::stoul(w.substr(2)));
    }

    /** Peek: does the next token start with a digit or sign? */
    bool
    nextIsNumber()
    {
        skipWs();
        if (pos_ >= s_.size())
            return false;
        char c = s_[pos_];
        return std::isdigit(static_cast<unsigned char>(c)) ||
               c == '-' || c == '+';
    }

  private:
    std::string s_; // owned: callers often pass temporaries
    std::size_t pos_ = 0;
};

Opcode
opcodeFromName(const std::string &name)
{
    static const std::map<std::string, Opcode> table = {
        {"movi", Opcode::MovImm},   {"mov", Opcode::Mov},
        {"add", Opcode::Add},       {"sub", Opcode::Sub},
        {"mul", Opcode::Mul},       {"divu", Opcode::DivU},
        {"remu", Opcode::RemU},     {"and", Opcode::And},
        {"or", Opcode::Or},         {"xor", Opcode::Xor},
        {"shl", Opcode::Shl},       {"shr", Opcode::Shr},
        {"cmpeq", Opcode::CmpEq},   {"cmpne", Opcode::CmpNe},
        {"cmpult", Opcode::CmpUlt}, {"cmpslt", Opcode::CmpSlt},
        {"ld", Opcode::Load},       {"st", Opcode::Store},
        {"br", Opcode::Br},         {"condbr", Opcode::CondBr},
        {"ret", Opcode::Ret},       {"call", Opcode::Call},
        {"atomadd", Opcode::AtomicAdd},
        {"atomxchg", Opcode::AtomicXchg},
        {"atomcas", Opcode::AtomicCas},
        {"fence", Opcode::Fence},
        {"rgnbound", Opcode::RegionBoundary},
        {"ckpt", Opcode::Checkpoint},
        {"iowr", Opcode::IoWrite},
        {"nop", Opcode::Nop},
    };
    auto it = table.find(name);
    if (it == table.end())
        cwsp_fatal("IR parse error: unknown mnemonic '", name, "'");
    return it->second;
}

/** Parse "[rB+off]" into (base, offset). */
std::pair<Reg, std::int64_t>
parseMemRef(LineLexer &lex)
{
    lex.expect('[');
    Reg base = lex.reg();
    lex.expect('+');
    std::int64_t off = lex.integer();
    lex.expect(']');
    return {base, off};
}

Instr
parseInstr(LineLexer &lex)
{
    Instr i;
    std::string mn = lex.word();
    i.op = opcodeFromName(mn);
    using Op = Opcode;
    switch (i.op) {
      case Op::MovImm:
        i.dst = lex.reg();
        i.imm = lex.integer();
        break;
      case Op::Mov:
        i.dst = lex.reg();
        i.a = lex.reg();
        break;
      case Op::Load: {
        i.dst = lex.reg();
        auto [base, off] = parseMemRef(lex);
        i.a = base;
        i.imm = off;
        break;
      }
      case Op::Store: {
        i.a = lex.reg();
        auto [base, off] = parseMemRef(lex);
        i.b = base;
        i.imm = off;
        break;
      }
      case Op::Br:
        i.target0 = lex.blockRef();
        break;
      case Op::CondBr:
        i.a = lex.reg();
        i.target0 = lex.blockRef();
        i.target1 = lex.blockRef();
        break;
      case Op::Ret:
        if (!lex.atEnd())
            i.a = lex.reg();
        break;
      case Op::Call: {
        i.dst = lex.reg();
        std::string callee = lex.word(); // f<index>
        if (callee.empty() || callee[0] != 'f')
            cwsp_fatal("IR parse error: bad callee '", callee, "'");
        i.callee =
            static_cast<FuncId>(std::stoul(callee.substr(1)));
        lex.expect('(');
        while (!lex.tryConsume(')'))
            i.args.push_back(lex.reg());
        break;
      }
      case Op::AtomicAdd:
      case Op::AtomicXchg:
      case Op::AtomicCas: {
        i.dst = lex.reg();
        i.a = lex.reg();
        auto [base, off] = parseMemRef(lex);
        i.b = base;
        i.imm = off;
        break;
      }
      case Op::Fence:
      case Op::Nop:
        break;
      case Op::RegionBoundary:
        lex.expect('#');
        i.imm = lex.integer();
        break;
      case Op::Checkpoint:
        i.a = lex.reg();
        break;
      case Op::IoWrite: {
        i.a = lex.reg();
        std::string dev = lex.word();
        if (dev.rfind("dev", 0) != 0)
            cwsp_fatal("IR parse error: expected devN, got '", dev,
                       "'");
        i.imm = std::stoll(dev.substr(3));
        break;
      }
      default:
        if (isBinaryAlu(i.op)) {
            i.dst = lex.reg();
            i.a = lex.reg();
            if (lex.nextIsNumber()) {
                i.bIsImm = true;
                i.imm = lex.integer();
            } else {
                i.b = lex.reg();
            }
        } else {
            cwsp_panic("unhandled opcode in parser");
        }
        break;
    }
    return i;
}

/** Strip a leading "[<idx>]" instruction-index annotation. */
std::string
stripIndex(const std::string &line)
{
    std::size_t p = line.find_first_not_of(" \t");
    if (p != std::string::npos && line[p] == '[') {
        std::size_t close = line.find(']', p);
        if (close != std::string::npos)
            return line.substr(close + 1);
    }
    return line;
}

} // namespace

std::unique_ptr<Module>
parseModule(const std::string &text)
{
    auto mod = std::make_unique<Module>();
    std::istringstream in(text);
    std::string line;

    Function *cur_func = nullptr;
    BasicBlock *cur_block = nullptr;
    bool laid_out = false;

    auto finish_globals = [&]() {
        if (!laid_out) {
            mod->layoutMemory();
            laid_out = true;
        }
    };

    while (std::getline(in, line)) {
        // Trim.
        std::size_t a = line.find_first_not_of(" \t\r");
        if (a == std::string::npos)
            continue;
        std::size_t z = line.find_last_not_of(" \t\r");
        std::string body = line.substr(a, z - a + 1);
        if (body.empty() || body[0] == ';' || body[0] == '#')
            continue;

        if (body.rfind("global ", 0) == 0) {
            cwsp_assert(!laid_out,
                        "globals must precede all functions");
            LineLexer lex(body.substr(7));
            std::string name = lex.word();
            lex.expect('(');
            std::int64_t bytes = lex.integer();
            mod->addGlobal(name,
                           static_cast<std::uint64_t>(bytes));
            continue; // rest of line ("bytes) @0x...") ignored
        }
        if (body.rfind("func ", 0) == 0) {
            finish_globals();
            LineLexer lex(body.substr(5));
            std::string name = lex.word();
            lex.expect('(');
            std::int64_t params = lex.integer();
            cur_func = &mod->addFunction(
                name, static_cast<unsigned>(params));
            cur_block = nullptr;
            continue;
        }
        if (body.rfind("bb", 0) == 0 && body.back() == ':') {
            if (!cur_func)
                cwsp_fatal("IR parse error: block outside function");
            cur_block = &cur_func->addBlock();
            // Labels must be consecutive (the printer's invariant).
            auto want = std::stoul(
                body.substr(2, body.size() - 3));
            if (want != cur_block->id())
                cwsp_fatal("IR parse error: non-consecutive block "
                           "label bb",
                           want);
            continue;
        }
        if (!cur_block)
            cwsp_fatal("IR parse error: instruction outside block: ",
                       body);
        std::string stripped = stripIndex(body);
        LineLexer lex(stripped);
        cur_block->instrs().push_back(parseInstr(lex));
    }
    finish_globals();
    return mod;
}

} // namespace cwsp::ir
