#include "ir/ir.hh"

#include "sim/logging.hh"

namespace cwsp::ir {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::MovImm: return "movi";
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::DivU: return "divu";
      case Opcode::RemU: return "remu";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::CmpEq: return "cmpeq";
      case Opcode::CmpNe: return "cmpne";
      case Opcode::CmpUlt: return "cmpult";
      case Opcode::CmpSlt: return "cmpslt";
      case Opcode::Load: return "ld";
      case Opcode::Store: return "st";
      case Opcode::Br: return "br";
      case Opcode::CondBr: return "condbr";
      case Opcode::Ret: return "ret";
      case Opcode::Call: return "call";
      case Opcode::AtomicAdd: return "atomadd";
      case Opcode::AtomicXchg: return "atomxchg";
      case Opcode::AtomicCas: return "atomcas";
      case Opcode::Fence: return "fence";
      case Opcode::RegionBoundary: return "rgnbound";
      case Opcode::Checkpoint: return "ckpt";
      case Opcode::IoWrite: return "iowr";
      case Opcode::Nop: return "nop";
    }
    return "?";
}

bool
isTerminator(Opcode op)
{
    return op == Opcode::Br || op == Opcode::CondBr || op == Opcode::Ret;
}

bool
accessesMemory(Opcode op)
{
    switch (op) {
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::AtomicAdd:
      case Opcode::AtomicXchg:
      case Opcode::AtomicCas:
      case Opcode::Checkpoint:
        return true;
      default:
        return false;
    }
}

bool
isAtomic(Opcode op)
{
    return op == Opcode::AtomicAdd || op == Opcode::AtomicXchg ||
           op == Opcode::AtomicCas;
}

bool
isBinaryAlu(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::DivU:
      case Opcode::RemU:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::CmpEq:
      case Opcode::CmpNe:
      case Opcode::CmpUlt:
      case Opcode::CmpSlt:
        return true;
      default:
        return false;
    }
}

Reg
Instr::defReg() const
{
    switch (op) {
      case Opcode::MovImm:
      case Opcode::Mov:
      case Opcode::Load:
      case Opcode::Call:
      case Opcode::AtomicAdd:
      case Opcode::AtomicXchg:
      case Opcode::AtomicCas:
        return dst;
      default:
        return isBinaryAlu(op) ? dst : kNoReg;
    }
}

void
Instr::useRegs(std::vector<Reg> &out) const
{
    auto push = [&out](Reg r) {
        if (r != kNoReg)
            out.push_back(r);
    };
    switch (op) {
      case Opcode::MovImm:
        break;
      case Opcode::Mov:
        push(a);
        break;
      case Opcode::Load:
        push(a); // base
        break;
      case Opcode::Store:
        push(a); // value
        push(b); // base
        break;
      case Opcode::Br:
        break;
      case Opcode::CondBr:
        push(a);
        break;
      case Opcode::Ret:
        push(a);
        break;
      case Opcode::Call:
        for (Reg r : args)
            push(r);
        break;
      case Opcode::AtomicAdd:
      case Opcode::AtomicXchg:
        push(a); // operand value
        push(b); // base
        break;
      case Opcode::AtomicCas:
        push(dst); // expected value (read before being overwritten)
        push(a);   // new value
        push(b);   // base
        break;
      case Opcode::Fence:
      case Opcode::RegionBoundary:
      case Opcode::Nop:
        break;
      case Opcode::Checkpoint:
      case Opcode::IoWrite:
        push(a);
        break;
      default:
        if (isBinaryAlu(op)) {
            push(a);
            if (!bIsImm)
                push(b);
        }
        break;
    }
}

bool
Instr::writesMemory() const
{
    return op == Opcode::Store || op == Opcode::AtomicAdd ||
           op == Opcode::AtomicXchg || op == Opcode::AtomicCas ||
           op == Opcode::Checkpoint;
}

bool
Instr::readsMemory() const
{
    return op == Opcode::Load || op == Opcode::AtomicAdd ||
           op == Opcode::AtomicXchg || op == Opcode::AtomicCas;
}

const Instr &
BasicBlock::terminator() const
{
    cwsp_assert(!instrs_.empty(), "terminator() on empty block");
    const Instr &last = instrs_.back();
    cwsp_assert(isTerminator(last.op), "block ", id_,
                " does not end in a terminator");
    return last;
}

std::vector<BlockId>
BasicBlock::successors() const
{
    const Instr &t = terminator();
    switch (t.op) {
      case Opcode::Br:
        return {t.target0};
      case Opcode::CondBr:
        if (t.target0 == t.target1)
            return {t.target0};
        return {t.target0, t.target1};
      case Opcode::Ret:
        return {};
      default:
        cwsp_panic("unreachable terminator kind");
    }
}

Function::Function(FuncId id, std::string name, unsigned num_params)
    : id_(id), name_(std::move(name)), numParams_(num_params)
{
    cwsp_assert(num_params <= kNumRegs, "too many parameters");
}

BasicBlock &
Function::addBlock()
{
    auto id = static_cast<BlockId>(blocks_.size());
    blocks_.push_back(std::make_unique<BasicBlock>(id));
    return *blocks_.back();
}

std::size_t
Function::numInstrs() const
{
    std::size_t n = 0;
    for (const auto &b : blocks_)
        n += b->instrs().size();
    return n;
}

Function &
Module::addFunction(const std::string &name, unsigned num_params)
{
    cwsp_assert(funcIndex_.find(name) == funcIndex_.end(),
                "duplicate function ", name);
    auto id = static_cast<FuncId>(functions_.size());
    functions_.push_back(std::make_unique<Function>(id, name, num_params));
    funcIndex_[name] = id;
    return *functions_.back();
}

Function &
Module::functionByName(const std::string &name)
{
    FuncId id = findFunction(name);
    if (id == kNoFunc)
        cwsp_fatal("unknown function ", name);
    return *functions_[id];
}

FuncId
Module::findFunction(const std::string &name) const
{
    auto it = funcIndex_.find(name);
    return it == funcIndex_.end() ? kNoFunc : it->second;
}

GlobalVar &
Module::addGlobal(const std::string &name, std::uint64_t size_bytes)
{
    cwsp_assert(!laidOut_, "cannot add globals after layoutMemory()");
    cwsp_assert(globalIndex_.find(name) == globalIndex_.end(),
                "duplicate global ", name);
    globalIndex_[name] = globals_.size();
    globals_.push_back(GlobalVar{name, size_bytes, 0, {}});
    return globals_.back();
}

GlobalVar &
Module::global(const std::string &name)
{
    auto it = globalIndex_.find(name);
    if (it == globalIndex_.end())
        cwsp_fatal("unknown global ", name);
    return globals_[it->second];
}

void
Module::layoutMemory()
{
    cwsp_assert(!laidOut_, "layoutMemory() called twice");
    Addr next = kGlobalBase;
    for (auto &g : globals_) {
        g.base = next;
        // Round each object up to a cacheline so distinct globals
        // never share a line (keeps alias reasoning exact).
        std::uint64_t sz =
            (g.sizeBytes + kCachelineBytes - 1) & ~std::uint64_t{63};
        next += std::max<std::uint64_t>(sz, kCachelineBytes);
    }
    cwsp_assert(next < kStackBase, "globals overflow into stack area");
    laidOut_ = true;
}

std::size_t
Module::numInstrs() const
{
    std::size_t n = 0;
    for (const auto &f : functions_)
        n += f->numInstrs();
    return n;
}

} // namespace cwsp::ir
