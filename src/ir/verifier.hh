/**
 * @file
 * Structural well-formedness checks for the mini-IR. Run after
 * construction and after each compiler pass.
 */

#ifndef CWSP_IR_VERIFIER_HH
#define CWSP_IR_VERIFIER_HH

#include <string>
#include <vector>

#include "ir/ir.hh"

namespace cwsp::ir {

/**
 * Verify structural invariants of @p module:
 *  - every block is non-empty and ends in exactly one terminator,
 *    with no terminator mid-block;
 *  - branch targets, callees, and register indices are in range;
 *  - call argument counts match callee parameter counts;
 *  - RegionBoundary ids reference existing recovery slices (when the
 *    function is instrumented);
 *  - memory has been laid out when any global is referenced.
 *
 * @return list of human-readable problems; empty means valid.
 */
std::vector<std::string> verify(const Module &module);

/** Verify a single function (same checks, callee checks skipped). */
std::vector<std::string> verify(const Function &func);

/** Panic with a combined message if verify(module) is non-empty. */
void verifyOrDie(const Module &module);

} // namespace cwsp::ir

#endif // CWSP_IR_VERIFIER_HH
