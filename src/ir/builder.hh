/**
 * @file
 * Fluent construction API for the mini-IR, used by workload kernels,
 * tests, and examples.
 */

#ifndef CWSP_IR_BUILDER_HH
#define CWSP_IR_BUILDER_HH

#include <string>
#include <vector>

#include "ir/ir.hh"

namespace cwsp::ir {

/**
 * Emits instructions into a current insertion block of one function.
 * All emit methods return the destination register for chaining
 * convenience where one exists.
 */
class IRBuilder
{
  public:
    explicit IRBuilder(Function &func) : func_(&func) {}

    /** Create a new block and return its id (does not switch to it). */
    BlockId newBlock();

    /** Switch the insertion point to @p block. */
    void setBlock(BlockId block);

    /** Current insertion block. */
    BlockId currentBlock() const { return cur_; }

    // -- Data movement -------------------------------------------------
    Reg movImm(Reg dst, std::int64_t imm);
    Reg mov(Reg dst, Reg src);

    // -- ALU -----------------------------------------------------------
    Reg binOp(Opcode op, Reg dst, Reg a, Reg b);
    Reg binOpImm(Opcode op, Reg dst, Reg a, std::int64_t imm);

    Reg add(Reg dst, Reg a, Reg b) { return binOp(Opcode::Add, dst, a, b); }
    Reg addImm(Reg dst, Reg a, std::int64_t i)
    {
        return binOpImm(Opcode::Add, dst, a, i);
    }
    Reg sub(Reg dst, Reg a, Reg b) { return binOp(Opcode::Sub, dst, a, b); }
    Reg mul(Reg dst, Reg a, Reg b) { return binOp(Opcode::Mul, dst, a, b); }
    Reg mulImm(Reg dst, Reg a, std::int64_t i)
    {
        return binOpImm(Opcode::Mul, dst, a, i);
    }
    Reg andImm(Reg dst, Reg a, std::int64_t i)
    {
        return binOpImm(Opcode::And, dst, a, i);
    }
    Reg xorOp(Reg dst, Reg a, Reg b) { return binOp(Opcode::Xor, dst, a, b); }
    Reg shlImm(Reg dst, Reg a, std::int64_t i)
    {
        return binOpImm(Opcode::Shl, dst, a, i);
    }
    Reg shrImm(Reg dst, Reg a, std::int64_t i)
    {
        return binOpImm(Opcode::Shr, dst, a, i);
    }
    Reg cmpUlt(Reg dst, Reg a, Reg b)
    {
        return binOp(Opcode::CmpUlt, dst, a, b);
    }
    Reg cmpUltImm(Reg dst, Reg a, std::int64_t i)
    {
        return binOpImm(Opcode::CmpUlt, dst, a, i);
    }
    Reg cmpEqImm(Reg dst, Reg a, std::int64_t i)
    {
        return binOpImm(Opcode::CmpEq, dst, a, i);
    }

    // -- Memory ----------------------------------------------------------
    Reg load(Reg dst, Reg base, std::int64_t offset = 0);
    void store(Reg value, Reg base, std::int64_t offset = 0);

    // -- Control flow ----------------------------------------------------
    void br(BlockId target);
    void condBr(Reg cond, BlockId if_nonzero, BlockId if_zero);
    void ret(Reg value = kNoReg);

    Reg call(Reg dst, FuncId callee, std::vector<Reg> args);

    // -- Synchronization ---------------------------------------------------
    Reg atomicAdd(Reg dst, Reg operand, Reg base, std::int64_t offset = 0);
    Reg atomicXchg(Reg dst, Reg operand, Reg base, std::int64_t offset = 0);
    /**
     * Compare-and-swap: @p dstExpected holds the expected value on
     * entry and receives the old memory value; on success
     * mem[base+offset] = newVal. Success test: old == dstExpected.
     */
    Reg atomicCas(Reg dstExpected, Reg newVal, Reg base,
                  std::int64_t offset = 0);
    void fence();

    /** Irrevocable device output: write r[value] to device @p dev. */
    void ioWrite(Reg value, std::int64_t dev);

    void nop();

    /** Raw emission escape hatch. */
    void emit(Instr instr);

  private:
    Function *func_;
    BlockId cur_ = 0;
    bool haveBlock_ = false;

    std::vector<Instr> &ops();
};

} // namespace cwsp::ir

#endif // CWSP_IR_BUILDER_HH
