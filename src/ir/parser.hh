/**
 * @file
 * Textual IR parser: reads the format the printer emits, enabling
 * IR-as-text test fixtures, golden files, and tooling round trips.
 */

#ifndef CWSP_IR_PARSER_HH
#define CWSP_IR_PARSER_HH

#include <memory>
#include <string>

#include "ir/ir.hh"

namespace cwsp::ir {

/**
 * Parse a module from @p text. The grammar is exactly the printer's
 * output:
 *
 *   global <name> (<bytes> bytes) [@0x<addr>]
 *   func <name>(<n> params)
 *   bb<k>:
 *     [<idx>] <mnemonic> <operands...>
 *
 * Addresses printed after globals are ignored; the module is laid out
 * afresh. Calls reference callees as `f<index>` in definition order.
 *
 * Throws std::runtime_error (via cwsp_fatal) on malformed input.
 */
std::unique_ptr<Module> parseModule(const std::string &text);

} // namespace cwsp::ir

#endif // CWSP_IR_PARSER_HH
