#include "ir/printer.hh"

#include <sstream>

namespace cwsp::ir {

namespace {

std::string
regName(Reg r)
{
    if (r == kNoReg)
        return "-";
    return "r" + std::to_string(unsigned{r});
}

} // namespace

std::string
toString(const Instr &i)
{
    std::ostringstream os;
    os << opcodeName(i.op);
    switch (i.op) {
      case Opcode::MovImm:
        os << " " << regName(i.dst) << ", " << i.imm;
        break;
      case Opcode::Mov:
        os << " " << regName(i.dst) << ", " << regName(i.a);
        break;
      case Opcode::Load:
        os << " " << regName(i.dst) << ", [" << regName(i.a) << "+"
           << i.imm << "]";
        break;
      case Opcode::Store:
        os << " " << regName(i.a) << ", [" << regName(i.b) << "+"
           << i.imm << "]";
        break;
      case Opcode::Br:
        os << " bb" << i.target0;
        break;
      case Opcode::CondBr:
        os << " " << regName(i.a) << ", bb" << i.target0 << ", bb"
           << i.target1;
        break;
      case Opcode::Ret:
        if (i.a != kNoReg)
            os << " " << regName(i.a);
        break;
      case Opcode::Call:
        os << " " << regName(i.dst) << ", f" << i.callee << "(";
        for (std::size_t k = 0; k < i.args.size(); ++k)
            os << (k ? ", " : "") << regName(i.args[k]);
        os << ")";
        break;
      case Opcode::AtomicAdd:
      case Opcode::AtomicXchg:
      case Opcode::AtomicCas:
        os << " " << regName(i.dst) << ", " << regName(i.a) << ", ["
           << regName(i.b) << "+" << i.imm << "]";
        break;
      case Opcode::Fence:
      case Opcode::Nop:
        break;
      case Opcode::RegionBoundary:
        os << " #" << i.imm;
        break;
      case Opcode::Checkpoint:
        os << " " << regName(i.a);
        break;
      case Opcode::IoWrite:
        os << " " << regName(i.a) << ", dev" << i.imm;
        break;
      default:
        if (isBinaryAlu(i.op)) {
            os << " " << regName(i.dst) << ", " << regName(i.a) << ", ";
            if (i.bIsImm)
                os << i.imm;
            else
                os << regName(i.b);
        }
        break;
    }
    return os.str();
}

void
print(std::ostream &os, const Function &func)
{
    os << "func " << func.name() << "(" << func.numParams()
       << " params)\n";
    for (std::size_t b = 0; b < func.numBlocks(); ++b) {
        const auto &blk = func.block(static_cast<BlockId>(b));
        os << "bb" << b << ":\n";
        const auto &instrs = blk.instrs();
        for (std::size_t k = 0; k < instrs.size(); ++k)
            os << "  [" << k << "] " << toString(instrs[k]) << "\n";
    }
}

void
print(std::ostream &os, const Module &module)
{
    for (const auto &g : module.globals()) {
        os << "global " << g.name << " (" << g.sizeBytes << " bytes)";
        if (module.laidOut())
            os << " @0x" << std::hex << g.base << std::dec;
        os << "\n";
    }
    for (std::size_t f = 0; f < module.numFunctions(); ++f) {
        print(os, module.function(static_cast<FuncId>(f)));
        os << "\n";
    }
}

} // namespace cwsp::ir
