/**
 * @file
 * Textual dump of modules/functions/instructions for debugging and
 * golden tests.
 */

#ifndef CWSP_IR_PRINTER_HH
#define CWSP_IR_PRINTER_HH

#include <ostream>
#include <string>

#include "ir/ir.hh"

namespace cwsp::ir {

/** Render one instruction as text (no trailing newline). */
std::string toString(const Instr &instr);

/** Print @p func with block labels and per-instruction indices. */
void print(std::ostream &os, const Function &func);

/** Print every function and global of @p module. */
void print(std::ostream &os, const Module &module);

} // namespace cwsp::ir

#endif // CWSP_IR_PRINTER_HH
