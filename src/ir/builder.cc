#include "ir/builder.hh"

#include "sim/logging.hh"

namespace cwsp::ir {

std::vector<Instr> &
IRBuilder::ops()
{
    cwsp_assert(haveBlock_, "IRBuilder has no insertion block; call "
                            "newBlock()/setBlock() first");
    return func_->block(cur_).instrs();
}

BlockId
IRBuilder::newBlock()
{
    return func_->addBlock().id();
}

void
IRBuilder::setBlock(BlockId block)
{
    cwsp_assert(block < func_->numBlocks(), "setBlock: bad block id");
    cur_ = block;
    haveBlock_ = true;
}

Reg
IRBuilder::movImm(Reg dst, std::int64_t imm)
{
    Instr i;
    i.op = Opcode::MovImm;
    i.dst = dst;
    i.imm = imm;
    ops().push_back(i);
    return dst;
}

Reg
IRBuilder::mov(Reg dst, Reg src)
{
    Instr i;
    i.op = Opcode::Mov;
    i.dst = dst;
    i.a = src;
    ops().push_back(i);
    return dst;
}

Reg
IRBuilder::binOp(Opcode op, Reg dst, Reg a, Reg b)
{
    cwsp_assert(isBinaryAlu(op), "binOp with non-ALU opcode");
    Instr i;
    i.op = op;
    i.dst = dst;
    i.a = a;
    i.b = b;
    ops().push_back(i);
    return dst;
}

Reg
IRBuilder::binOpImm(Opcode op, Reg dst, Reg a, std::int64_t imm)
{
    cwsp_assert(isBinaryAlu(op), "binOpImm with non-ALU opcode");
    Instr i;
    i.op = op;
    i.dst = dst;
    i.a = a;
    i.bIsImm = true;
    i.imm = imm;
    ops().push_back(i);
    return dst;
}

Reg
IRBuilder::load(Reg dst, Reg base, std::int64_t offset)
{
    Instr i;
    i.op = Opcode::Load;
    i.dst = dst;
    i.a = base;
    i.imm = offset;
    ops().push_back(i);
    return dst;
}

void
IRBuilder::store(Reg value, Reg base, std::int64_t offset)
{
    Instr i;
    i.op = Opcode::Store;
    i.a = value;
    i.b = base;
    i.imm = offset;
    ops().push_back(i);
}

void
IRBuilder::br(BlockId target)
{
    Instr i;
    i.op = Opcode::Br;
    i.target0 = target;
    ops().push_back(i);
}

void
IRBuilder::condBr(Reg cond, BlockId if_nonzero, BlockId if_zero)
{
    Instr i;
    i.op = Opcode::CondBr;
    i.a = cond;
    i.target0 = if_nonzero;
    i.target1 = if_zero;
    ops().push_back(i);
}

void
IRBuilder::ret(Reg value)
{
    Instr i;
    i.op = Opcode::Ret;
    i.a = value;
    ops().push_back(i);
}

Reg
IRBuilder::call(Reg dst, FuncId callee, std::vector<Reg> args)
{
    Instr i;
    i.op = Opcode::Call;
    i.dst = dst;
    i.callee = callee;
    i.args = std::move(args);
    ops().push_back(i);
    return dst;
}

Reg
IRBuilder::atomicAdd(Reg dst, Reg operand, Reg base, std::int64_t offset)
{
    Instr i;
    i.op = Opcode::AtomicAdd;
    i.dst = dst;
    i.a = operand;
    i.b = base;
    i.imm = offset;
    ops().push_back(i);
    return dst;
}

Reg
IRBuilder::atomicXchg(Reg dst, Reg operand, Reg base, std::int64_t offset)
{
    Instr i;
    i.op = Opcode::AtomicXchg;
    i.dst = dst;
    i.a = operand;
    i.b = base;
    i.imm = offset;
    ops().push_back(i);
    return dst;
}

Reg
IRBuilder::atomicCas(Reg dstExpected, Reg newVal, Reg base,
                     std::int64_t offset)
{
    Instr i;
    i.op = Opcode::AtomicCas;
    i.dst = dstExpected;
    i.a = newVal;
    i.b = base;
    i.imm = offset;
    ops().push_back(i);
    return dstExpected;
}

void
IRBuilder::fence()
{
    Instr i;
    i.op = Opcode::Fence;
    ops().push_back(i);
}

void
IRBuilder::ioWrite(Reg value, std::int64_t dev)
{
    Instr i;
    i.op = Opcode::IoWrite;
    i.a = value;
    i.imm = dev;
    ops().push_back(i);
}

void
IRBuilder::nop()
{
    Instr i;
    i.op = Opcode::Nop;
    ops().push_back(i);
}

void
IRBuilder::emit(Instr instr)
{
    ops().push_back(std::move(instr));
}

} // namespace cwsp::ir
