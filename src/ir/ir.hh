/**
 * @file
 * The cWSP mini-IR: a register-machine intermediate representation
 * with a fixed architectural register file.
 *
 * The paper's compiler operates on LLVM bitcode but its persistence
 * transformations (idempotent region formation, live-out register
 * checkpointing, checkpoint pruning) are fundamentally post-register-
 * allocation concepts: checkpoints save *architectural* registers into
 * an NVM area indexed by register number. We therefore model programs
 * directly as non-SSA three-address code over 32 general-purpose
 * 64-bit registers, which is the representation those algorithms
 * actually reason about.
 */

#ifndef CWSP_IR_IR_HH
#define CWSP_IR_IR_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace cwsp::ir {

/** Architectural register index (r0..r31). */
using Reg = std::uint8_t;

/** Number of general-purpose registers in the machine model. */
constexpr Reg kNumRegs = 32;

/** Sentinel meaning "no register operand". */
constexpr Reg kNoReg = 0xff;

/** Index of a basic block within its function. */
using BlockId = std::uint32_t;

/** Sentinel meaning "no block". */
constexpr BlockId kNoBlock = ~BlockId{0};

/** Index of a function within its module. */
using FuncId = std::uint32_t;

/** Sentinel meaning "no function". */
constexpr FuncId kNoFunc = ~FuncId{0};

/**
 * Static identifier of a recoverable region; equals the index of the
 * RegionBoundary instruction's entry in Function::recoverySlices().
 */
using StaticRegionId = std::uint32_t;

constexpr StaticRegionId kNoStaticRegion = ~StaticRegionId{0};

/** Instruction opcodes. */
enum class Opcode : std::uint8_t {
    // Data movement.
    MovImm,   ///< dst = imm
    Mov,      ///< dst = ra

    // Integer arithmetic/logic: dst = ra OP (bIsImm ? imm : rb).
    Add,
    Sub,
    Mul,
    DivU,     ///< unsigned divide; divide-by-zero yields 0 (trap-free)
    RemU,     ///< unsigned remainder; mod-by-zero yields ra
    And,
    Or,
    Xor,
    Shl,      ///< shift count taken mod 64
    Shr,      ///< logical right shift, count mod 64
    CmpEq,    ///< dst = (ra == op2) ? 1 : 0
    CmpNe,
    CmpUlt,   ///< unsigned less-than
    CmpSlt,   ///< signed less-than

    // Memory (64-bit words). Effective address = r[base] + imm.
    Load,     ///< dst = mem[ra + imm]
    Store,    ///< mem[rb + imm] = ra

    // Control flow (terminators).
    Br,       ///< unconditional branch to target0
    CondBr,   ///< if (ra != 0) goto target0 else goto target1
    Ret,      ///< return ra (or void when ra == kNoReg)

    // Calls (not terminators; args in Instr::args, result in dst).
    Call,

    // Synchronization.
    AtomicAdd,  ///< dst = mem[rb+imm]; mem[rb+imm] += ra  (sequentially consistent)
    AtomicXchg, ///< dst = mem[rb+imm]; mem[rb+imm] = ra
    /**
     * Compare-and-swap, x86 cmpxchg-style: dst holds the expected
     * value on input and receives the old memory value; on success
     * (old == expected) mem[rb+imm] = ra. A failed CAS still commits
     * an Atomic event writing back the old value, keeping the timing
     * and crash-injection plumbing uniform across both outcomes.
     */
    AtomicCas,
    Fence,      ///< full memory fence

    // Persistence instrumentation (inserted by the cWSP compiler).
    RegionBoundary, ///< starts a new recoverable region; imm = StaticRegionId
    Checkpoint,     ///< persist r[a] into the checkpoint slot for a

    /**
     * Irrevocable device output: write r[a] to device `imm`
     * (Section VIII's open problem, solved with region-ordered
     * battery-backed redo buffers — see arch/io_redo_buffer).
     */
    IoWrite,

    Nop,
};

/** @return printable mnemonic for @p op. */
const char *opcodeName(Opcode op);

/** @return true when @p op ends a basic block. */
bool isTerminator(Opcode op);

/** @return true for Load/Store/atomics/Checkpoint. */
bool accessesMemory(Opcode op);

/** @return true for AtomicAdd/AtomicXchg/AtomicCas. */
bool isAtomic(Opcode op);

/** @return true for the two-source ALU opcodes (Add..CmpSlt). */
bool isBinaryAlu(Opcode op);

/**
 * A single three-address instruction.
 *
 * Operand roles by opcode family are documented on Opcode. Unused
 * fields hold their sentinel values.
 */
struct Instr
{
    Opcode op = Opcode::Nop;
    Reg dst = kNoReg;     ///< destination register
    Reg a = kNoReg;       ///< first source register
    Reg b = kNoReg;       ///< second source register (base reg for memory)
    bool bIsImm = false;  ///< ALU second operand comes from imm
    std::int64_t imm = 0; ///< immediate / address offset / region id
    BlockId target0 = kNoBlock; ///< branch target (taken / unconditional)
    BlockId target1 = kNoBlock; ///< branch target (fall-through)
    FuncId callee = kNoFunc;    ///< called function
    std::vector<Reg> args;      ///< call arguments (copied to r0..rk-1)

    /** @return destination register or kNoReg. */
    Reg defReg() const;

    /** Append every source register to @p out (may contain dups). */
    void useRegs(std::vector<Reg> &out) const;

    /** @return true when this instruction writes simulated memory. */
    bool writesMemory() const;

    /** @return true when this instruction reads simulated memory. */
    bool readsMemory() const;
};

/** A straight-line sequence of instructions ending in a terminator. */
class BasicBlock
{
  public:
    explicit BasicBlock(BlockId id) : id_(id) {}

    BlockId id() const { return id_; }

    std::vector<Instr> &instrs() { return instrs_; }
    const std::vector<Instr> &instrs() const { return instrs_; }

    /** @return the terminator; block must be non-empty and well-formed. */
    const Instr &terminator() const;

    /** Successor block ids derived from the terminator. */
    std::vector<BlockId> successors() const;

  private:
    BlockId id_;
    std::vector<Instr> instrs_;
};

/**
 * A recovery-slice operation: one step of rebuilding a live-in
 * register at recovery time (Section IV-C / VII of the paper).
 */
struct RsOp
{
    enum class Kind : std::uint8_t {
        LoadSlot, ///< dst = checkpoint slot of register `slot`
        SetImm,   ///< dst = imm
        Apply,    ///< dst = op(srcA, srcB/imm) over already-restored regs
    };

    Kind kind = Kind::LoadSlot;
    Reg dst = kNoReg;
    Reg slot = kNoReg;        ///< for LoadSlot: which slot to read
    Opcode op = Opcode::Nop;  ///< for Apply
    Reg srcA = kNoReg;        ///< for Apply
    Reg srcB = kNoReg;        ///< for Apply (unless bIsImm)
    bool bIsImm = false;
    std::int64_t imm = 0;     ///< for SetImm / Apply immediate operand
};

/** The recovery slice of one static region. */
struct RecoverySlice
{
    /** Ordered restoration program; later ops may read earlier dsts. */
    std::vector<RsOp> ops;

    /** Registers this slice restores (the region's live-ins). */
    std::vector<Reg> liveIns;
};

/** A function: a CFG of basic blocks; entry is block 0. */
class Function
{
  public:
    Function(FuncId id, std::string name, unsigned num_params);

    FuncId id() const { return id_; }
    const std::string &name() const { return name_; }
    unsigned numParams() const { return numParams_; }

    BasicBlock &addBlock();
    BasicBlock &block(BlockId id) { return *blocks_[id]; }
    const BasicBlock &block(BlockId id) const { return *blocks_[id]; }
    std::size_t numBlocks() const { return blocks_.size(); }

    /** Total instruction count across all blocks. */
    std::size_t numInstrs() const;

    std::vector<RecoverySlice> &recoverySlices() { return slices_; }
    const std::vector<RecoverySlice> &recoverySlices() const
    {
        return slices_;
    }

    /** True once the cWSP compiler instrumented this function. */
    bool instrumented() const { return instrumented_; }
    void setInstrumented() { instrumented_ = true; }

  private:
    FuncId id_;
    std::string name_;
    unsigned numParams_;
    std::vector<std::unique_ptr<BasicBlock>> blocks_;
    std::vector<RecoverySlice> slices_;
    bool instrumented_ = false;
};

/** A named global memory object. */
struct GlobalVar
{
    std::string name;
    std::uint64_t sizeBytes = 0;
    Addr base = 0;           ///< assigned by Module::layoutMemory()
    std::vector<Word> init;  ///< optional word initializer (prefix)
};

/**
 * A whole program: functions plus global memory objects laid out in a
 * flat simulated physical address space.
 */
class Module
{
  public:
    /// Address-space layout constants.
    static constexpr Addr kGlobalBase = 0x1000'0000;
    static constexpr Addr kStackBase = 0x8000'0000;
    static constexpr Addr kStackStride = 0x40'0000; ///< per-core stack
    static constexpr Addr kCkptBase = 0xc000'0000;  ///< checkpoint area
    static constexpr Addr kCkptStride = 0x10'0000;  ///< per-core area

    Function &addFunction(const std::string &name, unsigned num_params);
    Function &function(FuncId id) { return *functions_[id]; }
    const Function &function(FuncId id) const { return *functions_[id]; }
    std::size_t numFunctions() const { return functions_.size(); }

    /** @return the function with @p name; fatal if absent. */
    Function &functionByName(const std::string &name);
    /** @return function id for @p name or kNoFunc. */
    FuncId findFunction(const std::string &name) const;

    /**
     * Declare a global of @p size_bytes; address assigned at layout.
     * The returned reference stays valid across later addGlobal calls
     * (deque storage).
     */
    GlobalVar &addGlobal(const std::string &name,
                         std::uint64_t size_bytes);
    GlobalVar &global(const std::string &name);
    const std::deque<GlobalVar> &globals() const { return globals_; }

    /** Assign addresses to all globals. Call once after construction. */
    void layoutMemory();
    bool laidOut() const { return laidOut_; }

    /** Total instruction count across all functions. */
    std::size_t numInstrs() const;

  private:
    std::vector<std::unique_ptr<Function>> functions_;
    std::unordered_map<std::string, FuncId> funcIndex_;
    std::deque<GlobalVar> globals_;
    std::unordered_map<std::string, std::size_t> globalIndex_;
    bool laidOut_ = false;
};

/** A (block, instruction-index) position inside one function. */
struct InstrRef
{
    BlockId block = kNoBlock;
    std::uint32_t index = 0;

    bool
    operator==(const InstrRef &o) const
    {
        return block == o.block && index == o.index;
    }
    bool
    operator<(const InstrRef &o) const
    {
        return block != o.block ? block < o.block : index < o.index;
    }
};

} // namespace cwsp::ir

#endif // CWSP_IR_IR_HH
