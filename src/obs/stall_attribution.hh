/**
 * @file
 * Stall attribution: charge every stalled core cycle to exactly one
 * cause. Total stall cycles are *defined* as the summed durations of
 * the core-lane stall events (PbStall, RbtStall, SchemeDrain), and
 * each of those events carries a StallCause, so the per-cause
 * decomposition sums to the total exactly — both numbers come from
 * the same trace. WpqFull waits live on the MC lanes and are already
 * folded into the core-side classification; they are reported
 * separately as an informative queue-pressure figure, not added to
 * the core total (that would double count).
 */

#ifndef CWSP_OBS_STALL_ATTRIBUTION_HH
#define CWSP_OBS_STALL_ATTRIBUTION_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/trace.hh"

namespace cwsp::obs {

/** Per-cause stall totals for one (scheme, app) run. */
struct StallAttribution
{
    std::array<std::uint64_t, sim::kNumStallCauses> cycles{};
    std::array<std::uint64_t, sim::kNumStallCauses> events{};
    std::uint64_t totalStallCycles = 0; ///< sum of stall-event durs
    std::uint64_t totalStallEvents = 0;
    std::uint64_t mcQueueWaitCycles = 0; ///< WpqFull (informative)

    /** Exact-sum self check; holds for any event stream. */
    bool
    sumsMatch() const
    {
        std::uint64_t sum = 0;
        for (auto c : cycles)
            sum += c;
        return sum == totalStallCycles;
    }
};

/**
 * Attribute the stalls in @p events. Causes outside the enum range
 * (a corrupted stream) are clamped to PbFull so the exact-sum
 * property still holds; the invariant monitor is the place that
 * flags such streams.
 */
StallAttribution
attributeStalls(const std::vector<sim::TraceEvent> &events);

/** One row of the attribution table. */
struct AttributionRow
{
    std::string scheme;
    std::string app;
    StallAttribution attribution;
    std::uint64_t runCycles = 0; ///< run length, for stall fraction
};

/**
 * Print a per-scheme, per-app table: total stall cycles, one column
 * per cause, the MC queue-wait figure, and the exact-sum check.
 */
void printAttributionTable(std::ostream &os,
                           const std::vector<AttributionRow> &rows);

} // namespace cwsp::obs

#endif // CWSP_OBS_STALL_ATTRIBUTION_HH
