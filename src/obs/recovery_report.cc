#include "obs/recovery_report.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "obs/baseline_diff.hh"

namespace cwsp::obs {

namespace {

/** Markdown/JSON labels per phase, core::RecoveryPhase order. */
constexpr const char *kPhaseKeys[kReportPhases] = {
    "detect", "scan", "undo_replay", "slice_reexec", "resume"};

/** Figure order for known schemes; unknown ones sort after. */
int
schemeRank(const std::string &s)
{
    static const char *order[] = {"baseline",    "cwsp", "capri",
                                  "ido",         "replaycache",
                                  "psp"};
    for (int i = 0; i < 6; ++i)
        if (s == order[i])
            return i;
    return 6;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
formatNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

/**
 * Split a flattened "recovery" metric path into (scheme, field).
 * Accepts both the campaign-JSON shape (recovery[cwsp].latency.mean
 * — array entries keyed by their "name" member, bracket appended
 * without a dot) and the stats-registry shape
 * (recovery.cwsp.latency.mean). Returns false for paths that are not
 * per-scheme recovery metrics.
 */
bool
splitRecoveryKey(const std::string &metric, std::string &scheme,
                 std::string &field)
{
    if (metric.compare(0, 9, "recovery.") == 0) {
        std::string rest = metric.substr(9);
        std::size_t dot = rest.find('.');
        if (dot == std::string::npos)
            return false;
        scheme = rest.substr(0, dot);
        field = rest.substr(dot + 1);
        return !scheme.empty() && !field.empty();
    }
    if (metric.compare(0, 9, "recovery[") == 0) {
        std::size_t close = metric.find("].", 9);
        if (close == std::string::npos)
            return false;
        scheme = metric.substr(9, close - 9);
        field = metric.substr(close + 2);
        return !scheme.empty() && !field.empty();
    }
    return false;
}

} // namespace

bool
buildRecoveryReport(const std::string &campaign_json,
                    RecoveryReport &out, std::string &error)
{
    std::map<std::string, double> metrics;
    try {
        metrics = flattenMetricsJson(campaign_json);
    } catch (const std::exception &ex) {
        error = ex.what();
        return false;
    }

    std::map<std::string, RecoveryParetoRow> rows;
    for (const auto &[metric, value] : metrics) {
        std::string scheme;
        std::string field;
        if (!splitRecoveryKey(metric, scheme, field))
            continue;
        RecoveryParetoRow &row = rows[scheme];
        row.scheme = scheme;
        if (field == "crashes") {
            row.crashes = static_cast<std::uint64_t>(value);
        } else if (field == "latency.mean") {
            row.meanRecoveryCycles = value;
        } else if (field == "latency.max") {
            row.maxRecoveryCycles = value;
        } else if (field == "lost_work.mean") {
            row.meanLostWork = value;
        } else if (field == "runtime_overhead" ||
                   field == "runtime_overhead.mean") {
            row.runtimeOverhead = value;
        } else {
            for (std::size_t p = 0; p < kReportPhases; ++p) {
                if (field ==
                    std::string("phases.") + kPhaseKeys[p]) {
                    row.phaseCycles[p] = value;
                    break;
                }
            }
        }
    }
    if (rows.empty()) {
        error = "no per-scheme recovery section found (run "
                "cwsp_faultcampaign --json first)";
        return false;
    }

    out.rows.clear();
    for (auto &[scheme, row] : rows) {
        (void)scheme;
        out.rows.push_back(std::move(row));
    }
    std::sort(out.rows.begin(), out.rows.end(),
              [](const RecoveryParetoRow &a,
                 const RecoveryParetoRow &b) {
                  int ra = schemeRank(a.scheme);
                  int rb = schemeRank(b.scheme);
                  if (ra != rb)
                      return ra < rb;
                  return a.scheme < b.scheme;
              });

    // Pareto frontier over (mean recovery latency, runtime
    // overhead): a row is dominated when another row is no worse on
    // both axes and strictly better on one. Rows missing either
    // measurement — no overhead baseline, or zero observed crashes
    // (a latency mean of 0 would dominate vacuously) — stay out of
    // the comparison entirely.
    auto measured = [](const RecoveryParetoRow &r) {
        return r.runtimeOverhead > 0.0 && r.crashes > 0;
    };
    for (auto &row : out.rows) {
        row.dominated = false;
        if (!measured(row))
            continue;
        for (const auto &other : out.rows) {
            if (&other == &row || !measured(other))
                continue;
            bool noWorse =
                other.meanRecoveryCycles <=
                    row.meanRecoveryCycles &&
                other.runtimeOverhead <= row.runtimeOverhead;
            bool strictlyBetter =
                other.meanRecoveryCycles <
                    row.meanRecoveryCycles ||
                other.runtimeOverhead < row.runtimeOverhead;
            if (noWorse && strictlyBetter) {
                row.dominated = true;
                break;
            }
        }
    }
    return true;
}

void
writeRecoveryReportJson(std::ostream &os,
                        const RecoveryReport &report)
{
    os << "{\n  \"schemes\": [";
    for (std::size_t i = 0; i < report.rows.size(); ++i) {
        const RecoveryParetoRow &r = report.rows[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"name\": \"" << jsonEscape(r.scheme)
           << "\", \"crashes\": " << r.crashes
           << ", \"mean_recovery_cycles\": "
           << formatNumber(r.meanRecoveryCycles)
           << ", \"max_recovery_cycles\": "
           << formatNumber(r.maxRecoveryCycles)
           << ", \"mean_lost_work\": "
           << formatNumber(r.meanLostWork)
           << ", \"runtime_overhead\": "
           << formatNumber(r.runtimeOverhead)
           << ", \"pareto_frontier\": "
           << (r.runtimeOverhead > 0.0 && r.crashes > 0 &&
                       !r.dominated
                   ? "true"
                   : "false")
           << ", \"phases\": {";
        for (std::size_t p = 0; p < kReportPhases; ++p) {
            os << (p ? ", " : "") << "\"" << kPhaseKeys[p]
               << "\": " << formatNumber(r.phaseCycles[p]);
        }
        os << "}}";
    }
    os << (report.rows.empty() ? "]" : "\n  ]") << "\n}\n";
}

void
writeRecoveryReportMarkdown(std::ostream &os,
                            const RecoveryReport &report)
{
    os << "# Recovery Pareto report\n\n"
       << "Mean recovery latency (simulated cycles per crash) "
          "against fault-free runtime\noverhead (gmean cycles vs. "
          "baseline). Frontier rows (`*`) are undominated:\nno "
          "other scheme recovers faster at equal-or-lower "
          "overhead.\n\n";
    os << "| scheme | crashes | mean recovery (cyc) | max (cyc) | "
          "mean lost work (instrs) | runtime overhead | frontier "
          "|\n";
    os << "|--------|--------:|--------------------:|----------:|"
          "------------------------:|-----------------:|:--------:"
          "|\n";
    for (const RecoveryParetoRow &r : report.rows) {
        os << "| " << r.scheme << " | " << r.crashes << " | "
           << formatNumber(r.meanRecoveryCycles) << " | "
           << formatNumber(r.maxRecoveryCycles) << " | "
           << formatNumber(r.meanLostWork) << " | ";
        if (r.runtimeOverhead > 0.0)
            os << formatNumber(r.runtimeOverhead);
        else
            os << "n/a";
        os << " | "
           << (r.runtimeOverhead > 0.0 && r.crashes > 0 &&
                       !r.dominated
                   ? "*"
                   : "")
           << " |\n";
    }
    os << "\n## Recovery phase totals (cycles)\n\n"
       << "Phases tile each recovery window exactly: detect + scan "
          "+ undo_replay +\nslice_reexec + resume = total recovery "
          "cycles.\n\n";
    os << "| scheme |";
    for (std::size_t p = 0; p < kReportPhases; ++p)
        os << " " << kPhaseKeys[p] << " |";
    os << "\n|--------|";
    for (std::size_t p = 0; p < kReportPhases; ++p)
        os << "--------:|";
    os << "\n";
    for (const RecoveryParetoRow &r : report.rows) {
        os << "| " << r.scheme << " |";
        for (std::size_t p = 0; p < kReportPhases; ++p)
            os << " " << formatNumber(r.phaseCycles[p]) << " |";
        os << "\n";
    }
}

std::vector<std::string>
telemetryWarnings(const std::map<std::string, double> &metrics)
{
    auto endsWith = [](const std::string &s,
                       const std::string &suffix) {
        return s.size() >= suffix.size() &&
               s.compare(s.size() - suffix.size(), suffix.size(),
                         suffix) == 0;
    };
    std::vector<std::string> warnings;
    for (const auto &[metric, value] : metrics) {
        if (value <= 0.0)
            continue;
        if (endsWith(metric, "trace_drops") ||
            endsWith(metric, ".dropped")) {
            warnings.push_back(
                "trace ring truncated: " + metric + " = " +
                formatNumber(value) +
                " (events lost; raise the trace capacity or narrow "
                "the category mask)");
        } else if (endsWith(metric, ".fallbacks")) {
            warnings.push_back(
                "checkpoint cache degraded: " + metric + " = " +
                formatNumber(value) +
                " (cases re-executed from scratch; raise "
                "CWSP_CKPT_CACHE_MB)");
        }
    }
    return warnings;
}

namespace {

/**
 * Minimal Chrome-trace walker: finds the traceEvents array and
 * checks each event object without building a DOM. Grammar errors
 * throw; semantic findings accumulate in the validation result.
 */
class TraceWalker
{
  public:
    TraceWalker(const std::string &text, TraceValidation &out)
        : text_(text), out_(out)
    {
    }

    void
    run()
    {
        skipWs();
        parseValue(/*topLevel=*/true);
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        if (!sawEvents_)
            out_.errors.push_back(
                "document has no traceEvents array");
    }

  private:
    const std::string &text_;
    TraceValidation &out_;
    std::size_t pos_ = 0;
    bool sawEvents_ = false;
    /** Last ts per counter series, keyed "name\x1f<tid>". */
    std::map<std::string, double> lastTs_;
    std::map<std::string, bool> flagged_;

    [[noreturn]] void
    fail(const std::string &what)
    {
        throw std::runtime_error("JSON parse error at offset " +
                                 std::to_string(pos_) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string s;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return s;
            if (c != '\\') {
                s += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': s += '"'; break;
              case '\\': s += '\\'; break;
              case '/': s += '/'; break;
              case 'n': s += '\n'; break;
              case 't': s += '\t'; break;
              case 'r': s += '\r'; break;
              case 'b': s += '\b'; break;
              case 'f': s += '\f'; break;
              case 'u':
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                pos_ += 4;
                s += '?';
                break;
              default: fail("bad escape");
            }
        }
    }

    double
    parseNumber()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(
                    text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            fail("expected number");
        return std::strtod(
            text_.substr(start, pos_ - start).c_str(), nullptr);
    }

    void
    skipLiteral(const char *lit)
    {
        for (const char *p = lit; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("expected literal ") + lit);
            ++pos_;
        }
    }

    /** Consume any value without inspecting it. */
    void
    skipValue()
    {
        char c = peek();
        if (c == '"') {
            parseString();
        } else if (c == '{') {
            ++pos_;
            skipWs();
            if (peek() == '}') {
                ++pos_;
                return;
            }
            while (true) {
                parseString();
                skipWs();
                expect(':');
                skipWs();
                skipValue();
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    skipWs();
                    continue;
                }
                expect('}');
                return;
            }
        } else if (c == '[') {
            ++pos_;
            skipWs();
            if (peek() == ']') {
                ++pos_;
                return;
            }
            while (true) {
                skipValue();
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    skipWs();
                    continue;
                }
                expect(']');
                return;
            }
        } else if (c == 't') {
            skipLiteral("true");
        } else if (c == 'f') {
            skipLiteral("false");
        } else if (c == 'n') {
            skipLiteral("null");
        } else {
            parseNumber();
        }
    }

    /** One traceEvents element: pull name/ph/tid/ts, verify. */
    void
    parseEvent()
    {
        expect('{');
        skipWs();
        std::string name;
        std::string ph;
        double tid = 0;
        double ts = 0;
        bool hasTs = false;
        if (peek() != '}') {
            while (true) {
                std::string key = parseString();
                skipWs();
                expect(':');
                skipWs();
                if (key == "name" && peek() == '"') {
                    name = parseString();
                } else if (key == "ph" && peek() == '"') {
                    ph = parseString();
                } else if (key == "tid" && peek() != '"' &&
                           peek() != '{' && peek() != '[') {
                    tid = parseNumber();
                } else if (key == "ts" && peek() != '"' &&
                           peek() != '{' && peek() != '[') {
                    ts = parseNumber();
                    hasTs = true;
                } else {
                    skipValue();
                }
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    skipWs();
                    continue;
                }
                break;
            }
        }
        expect('}');
        ++out_.events;
        if (ph != "C")
            return;
        ++out_.counterEvents;
        if (!hasTs) {
            out_.errors.push_back("counter event \"" + name +
                                  "\" has no ts");
            return;
        }
        std::string series =
            name + '\x1f' + std::to_string(static_cast<long>(tid));
        auto it = lastTs_.find(series);
        if (it == lastTs_.end()) {
            ++out_.counterTracks;
            lastTs_[series] = ts;
            return;
        }
        if (ts < it->second && !flagged_[series]) {
            out_.errors.push_back(
                "counter track \"" + name + "\" (tid " +
                std::to_string(static_cast<long>(tid)) +
                ") goes backwards in time: ts " +
                formatNumber(ts) + " after " +
                formatNumber(it->second));
            flagged_[series] = true;
        }
        it->second = std::max(it->second, ts);
    }

    void
    parseValue(bool topLevel)
    {
        char c = peek();
        if (c == '{') {
            ++pos_;
            skipWs();
            if (peek() == '}') {
                ++pos_;
                return;
            }
            while (true) {
                std::string key = parseString();
                skipWs();
                expect(':');
                skipWs();
                if (topLevel && key == "traceEvents" &&
                    peek() == '[') {
                    sawEvents_ = true;
                    ++pos_;
                    skipWs();
                    if (peek() == ']') {
                        ++pos_;
                    } else {
                        while (true) {
                            parseEvent();
                            skipWs();
                            if (peek() == ',') {
                                ++pos_;
                                skipWs();
                                continue;
                            }
                            expect(']');
                            break;
                        }
                    }
                } else {
                    skipValue();
                }
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    skipWs();
                    continue;
                }
                expect('}');
                return;
            }
        }
        skipValue();
    }
};

} // namespace

bool
validateChromeTrace(const std::string &json, TraceValidation &out,
                    std::string &error)
{
    out = TraceValidation{};
    try {
        TraceWalker(json, out).run();
    } catch (const std::exception &ex) {
        error = ex.what();
        return false;
    }
    return true;
}

} // namespace cwsp::obs
