#include "obs/durable_lin.hh"

#include <algorithm>
#include <optional>
#include <set>
#include <utility>

#include "sim/logging.hh"

namespace cwsp::obs {

namespace {

using workloads::ConcurrentKind;
using workloads::ConcurrentOp;
using workloads::ConcurrentSpec;

/** Everything known about one (worker, index) op after harvesting. */
struct OpFacts
{
    bool invCommitted = false;  ///< inv record in the pre-crash log
    bool respCommitted = false; ///< resp record in the pre-crash log
    bool respDurable = false;   ///< resp record in the durable image
    std::uint64_t respValue = 0;
};

/** Sequential abstract model of the three structures. Queue fronts
 * are consumed by index so DFS copies stay cheap. */
struct Model
{
    ConcurrentKind kind = ConcurrentKind::Stack;
    std::vector<std::uint64_t> seq; ///< stack (back = top) / queue
    std::size_t qhead = 0;          ///< queue: first live element
    std::vector<std::uint64_t> entries; ///< hash: composed, sorted

    std::uint64_t
    apply(const ConcurrentOp &op)
    {
        switch (kind) {
          case ConcurrentKind::Stack:
            if (op.kind == 1) {
                seq.push_back(op.arg);
                return 1;
            }
            if (seq.empty())
                return 0;
            {
                std::uint64_t v = seq.back();
                seq.pop_back();
                return v;
            }
          case ConcurrentKind::Queue:
            if (op.kind == 1) {
                seq.push_back(op.arg);
                return 1;
            }
            if (qhead == seq.size())
                return 0;
            return seq[qhead++];
          case ConcurrentKind::HashMap:
            if (op.kind == 1) {
                auto it = std::lower_bound(entries.begin(),
                                           entries.end(), op.arg);
                if (it == entries.end() || *it != op.arg)
                    entries.insert(it, op.arg);
                return 1;
            }
            for (std::uint64_t e : entries)
                if (e >> 32 == op.arg)
                    return e & 0xffff'ffffull;
            return 0;
        }
        return 0;
    }

    /** Canonical serialization for memoization. */
    std::string
    memoKey() const
    {
        std::string k;
        auto put = [&k](std::uint64_t v) {
            k.append(reinterpret_cast<const char *>(&v), sizeof(v));
        };
        if (kind == ConcurrentKind::HashMap) {
            for (std::uint64_t e : entries)
                put(e);
        } else {
            for (std::size_t i = qhead; i < seq.size(); ++i)
                put(seq[i]);
        }
        return k;
    }

    /** Does the live content equal @p target (see decode order)? */
    bool
    matches(const std::vector<std::uint64_t> &target) const
    {
        if (kind == ConcurrentKind::HashMap)
            return entries == target;
        if (seq.size() - qhead != target.size())
            return false;
        if (kind == ConcurrentKind::Queue)
            return std::equal(seq.begin() + static_cast<std::ptrdiff_t>(
                                                qhead),
                              seq.end(), target.begin());
        // Stack target is top-first; seq is bottom-first.
        return std::equal(seq.rbegin(), seq.rend(), target.begin());
    }
};

/** Decode the durable image into the model's canonical content
 * vector (queue: front-first; stack: top-first; hash: sorted
 * composed entries). nullopt = structurally corrupt image. */
std::optional<std::vector<std::uint64_t>>
decodeImage(const ConcurrentSpec &spec,
            const interp::SparseMemory &image, std::string &why)
{
    std::vector<std::uint64_t> out;
    auto node = [&](std::uint64_t idx) {
        return spec.nodesBase + idx * 16;
    };
    switch (spec.kind) {
      case ConcurrentKind::Stack: {
        std::uint64_t enc = image.read(spec.topAddr);
        std::uint64_t steps = 0;
        while (enc != 0) {
            if (enc > spec.nodeCount || ++steps > spec.nodeCount) {
                why = "stack top chain corrupt (bad index or cycle)";
                return std::nullopt;
            }
            out.push_back(image.read(node(enc - 1)));
            enc = image.read(node(enc - 1) + 8);
        }
        return out;
      }
      case ConcurrentKind::Queue: {
        std::uint64_t idx = image.read(spec.topAddr);
        std::uint64_t steps = 0;
        if (idx >= spec.nodeCount) {
            why = "queue head corrupt (bad index)";
            return std::nullopt;
        }
        std::uint64_t nxt = image.read(node(idx) + 8);
        while (nxt != 0) {
            if (nxt >= spec.nodeCount || ++steps > spec.nodeCount) {
                why = "queue next chain corrupt (bad index or cycle)";
                return std::nullopt;
            }
            out.push_back(image.read(node(nxt)));
            nxt = image.read(node(nxt) + 8);
        }
        return out;
      }
      case ConcurrentKind::HashMap: {
        for (std::uint32_t s = 0; s < spec.capacity; ++s) {
            std::uint64_t w = image.read(spec.slotsBase + s * 8ull);
            if (w != 0)
                out.push_back(w);
        }
        std::sort(out.begin(), out.end());
        for (std::size_t i = 1; i < out.size(); ++i) {
            if (out[i] >> 32 == out[i - 1] >> 32) {
                why = "hash image holds duplicate keys";
                return std::nullopt;
            }
        }
        return out;
      }
    }
    why = "unknown structure kind";
    return std::nullopt;
}

/** Memoized DFS over per-worker cutoffs and interleavings. */
struct Search
{
    const std::vector<std::vector<ConcurrentOp>> &ops;
    const std::vector<std::vector<OpFacts>> &facts;
    const std::vector<std::uint32_t> &lo;
    const std::vector<std::uint32_t> &hi;
    const std::vector<std::uint64_t> &target;

    std::set<std::pair<std::vector<std::uint32_t>, std::string>> seen;
    std::uint64_t states = 0;
    bool found = false;
    static constexpr std::uint64_t kStateBudget = 4'000'000;

    void
    dfs(std::vector<std::uint32_t> &n, const Model &m)
    {
        if (found || ++states > kStateBudget)
            return;
        if (!seen.emplace(n, m.memoKey()).second)
            return;
        bool cutOk = true;
        for (std::size_t w = 0; w < n.size(); ++w)
            cutOk &= n[w] >= lo[w];
        if (cutOk && m.matches(target)) {
            found = true;
            return;
        }
        for (std::size_t w = 0; w < n.size() && !found; ++w) {
            if (n[w] >= hi[w])
                continue;
            const ConcurrentOp &op = ops[w][n[w]];
            const OpFacts &f = facts[w][n[w]];
            Model next = m;
            std::uint64_t ret = next.apply(op) & 0xffff'ffffull;
            // A committed response pins the return value this op
            // must have produced in any witnessing linearization.
            if (f.respCommitted &&
                ret != (f.respValue & 0xffff'ffffull)) {
                continue;
            }
            ++n[w];
            dfs(n, next);
            --n[w];
        }
    }
};

} // namespace

const char *
dlOutcomeName(DlOutcome outcome)
{
    switch (outcome) {
      case DlOutcome::Pass: return "pass";
      case DlOutcome::Violation: return "violation";
      case DlOutcome::Vacuous: return "vacuous";
    }
    return "?";
}

DlResult
checkDurableLinearizability(
    const ConcurrentSpec &spec,
    const std::vector<std::vector<ConcurrentOp>> &workerOps,
    const std::vector<arch::StoreRecord> &stores,
    const interp::SparseMemory &image, bool fullRestart)
{
    DlResult res;
    if (fullRestart) {
        res.outcome = DlOutcome::Vacuous;
        res.reason = "recovery restarted from scratch: the empty "
                     "image is trivially consistent";
        return res;
    }
    cwsp_assert(workerOps.size() == spec.numWorkers,
                "one op sequence per worker required");

    // Harvest per-op facts from the pre-crash store log (commit
    // order) and the durable image (survival ground truth).
    std::vector<std::vector<OpFacts>> facts(spec.numWorkers);
    for (std::uint32_t w = 0; w < spec.numWorkers; ++w)
        facts[w].resize(spec.opsPerWorker);
    auto slotOf = [&spec](Addr addr) {
        std::uint64_t word = (addr - spec.histBase) / 8;
        return std::pair<std::uint64_t, bool>{word / 2, word % 2 != 0};
    };
    for (const auto &rec : stores) {
        if (rec.addr < spec.histBase ||
            rec.addr >= spec.histBase + spec.histBytes) {
            continue;
        }
        auto [op, isResp] = slotOf(rec.addr);
        auto w = static_cast<std::uint32_t>(op / spec.opsPerWorker);
        auto i = static_cast<std::uint32_t>(op % spec.opsPerWorker);
        if (w >= spec.numWorkers)
            continue;
        if (isResp) {
            facts[w][i].respCommitted = true;
            facts[w][i].respValue = rec.value;
        } else {
            facts[w][i].invCommitted = true;
        }
    }
    for (std::uint32_t w = 0; w < spec.numWorkers; ++w) {
        for (std::uint32_t i = 0; i < spec.opsPerWorker; ++i) {
            Addr inv = spec.histBase +
                       (std::uint64_t{w} * spec.opsPerWorker + i) * 16;
            std::uint64_t respWord = image.read(inv + 8);
            if (respWord != 0) {
                facts[w][i].respDurable = true;
                if (!facts[w][i].respCommitted)
                    facts[w][i].respValue = respWord;
            }
        }
    }

    // Per-worker bounds: hi = committed-invocation prefix (nothing
    // unstarted may appear), lo = durably-acknowledged prefix
    // (nothing acknowledged may be lost).
    std::vector<std::uint32_t> lo(spec.numWorkers, 0);
    std::vector<std::uint32_t> hi(spec.numWorkers, 0);
    for (std::uint32_t w = 0; w < spec.numWorkers; ++w) {
        while (hi[w] < spec.opsPerWorker &&
               facts[w][hi[w]].invCommitted) {
            ++hi[w];
        }
        for (std::uint32_t i = 0; i < spec.opsPerWorker; ++i) {
            if (!facts[w][i].respDurable)
                continue;
            if (i >= hi[w]) {
                res.outcome = DlOutcome::Violation;
                res.reason = "durable response without a committed "
                             "invocation (history corrupt)";
                return res;
            }
            lo[w] = i + 1;
            ++res.completedOps;
        }
        res.invokedOps += hi[w];
    }

    std::string why;
    auto target = decodeImage(spec, image, why);
    if (!target) {
        res.outcome = DlOutcome::Violation;
        res.reason = why;
        return res;
    }

    if (res.invokedOps == 0) {
        bool emptyOk = target->empty();
        res.outcome = emptyOk ? DlOutcome::Vacuous : DlOutcome::Violation;
        res.reason = emptyOk
                         ? "no committed invocations and an empty image"
                         : "image holds state but nothing was invoked";
        return res;
    }

    Model m;
    m.kind = spec.kind;
    Search search{workerOps, facts, lo, hi, *target, {}, 0, false};
    std::vector<std::uint32_t> n(spec.numWorkers, 0);
    search.dfs(n, m);
    res.statesExplored = search.states;
    if (search.found) {
        res.outcome = DlOutcome::Pass;
        res.reason = "witnessing linearization found";
    } else if (search.states > Search::kStateBudget) {
        res.outcome = DlOutcome::Vacuous;
        res.reason = "state budget exceeded (inconclusive)";
    } else {
        res.outcome = DlOutcome::Violation;
        res.reason = "no consistent cut of the pre-crash history "
                     "explains the recovered image";
    }
    return res;
}

} // namespace cwsp::obs
