/**
 * @file
 * Metric regression detection: compare two stats-JSON files (the
 * --stats-json output or bench_all.sh's BENCH_summary.json), flatten
 * every numeric leaf to a dotted metric path, and flag metrics whose
 * relative change exceeds a threshold. Used by cwsp_analyze --diff
 * and (warn-only) by tools/bench_all.sh after each benchmark sweep.
 */

#ifndef CWSP_OBS_BASELINE_DIFF_HH
#define CWSP_OBS_BASELINE_DIFF_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace cwsp::obs {

/** Knobs for one comparison. */
struct DiffOptions
{
    /** Relative change treated as significant (0.05 = 5%). */
    double threshold = 0.05;
    /**
     * Metrics containing any of these substrings are skipped.
     * Defaults drop wall-clock measurements, which vary run to run
     * on a loaded machine; simulated-cycle metrics stay in.
     */
    std::vector<std::string> ignoreSubstrings = {
        "real_time", "cpu_time", "wall_clock", "load_avg"};
};

/** One metric whose value moved beyond the threshold. */
struct MetricDelta
{
    std::string metric;
    double before = 0.0;
    double after = 0.0;
    double ratio = 1.0; ///< after / before (inf when before == 0)
};

/** Outcome of one comparison. */
struct DiffResult
{
    std::vector<MetricDelta> regressions;  ///< value increased
    std::vector<MetricDelta> improvements; ///< value decreased
    std::size_t compared = 0;
    std::size_t ignored = 0;
    std::vector<std::string> onlyBefore; ///< metric disappeared
    std::vector<std::string> onlyAfter;  ///< metric appeared

    bool hasRegressions() const { return !regressions.empty(); }
};

/**
 * Flatten a JSON document's numeric leaves to dotted metric paths.
 * Array elements are keyed by their "name" member when present (the
 * google-benchmark convention), else by index. Throws
 * std::runtime_error on malformed JSON.
 */
std::map<std::string, double>
flattenMetricsJson(const std::string &json);

/** Compare two JSON documents (already in memory). */
DiffResult diffMetrics(const std::string &before_json,
                       const std::string &after_json,
                       const DiffOptions &options = DiffOptions{});

/**
 * Compare two JSON files. On a read/parse failure, returns false and
 * sets @p error; @p result is untouched.
 */
bool diffMetricFiles(const std::string &before_path,
                     const std::string &after_path,
                     const DiffOptions &options, DiffResult &result,
                     std::string &error);

/** Human-readable report, largest relative changes first. */
void printDiffReport(std::ostream &os, const DiffResult &result,
                     const DiffOptions &options);

/** Labeling and metric selection for one trajectory append. */
struct TrajectoryOptions
{
    /** Entry label (short commit hash, PR tag, ...). */
    std::string label = "unlabeled";
    /** ISO date string; empty omits the field. */
    std::string date;
    /**
     * Only metrics containing one of these substrings are copied
     * into the trajectory entry. The defaults keep the simulator
     * throughput headline (bench_simspeed counters), the suite size,
     * and the fault-campaign health counters — a per-PR snapshot
     * small enough to commit, not the full summary.
     */
    std::vector<std::string> keepSubstrings = {
        "sims_per_sec", "ns_per_instr", "wall_clock_s",
        "total_cases",  "fault_campaign"};
};

/**
 * Append one entry — {label, date, metrics} with the metrics
 * selected from @p summary_path by @p options — to the JSON array in
 * @p trajectory_path, creating the file when absent. This is how
 * BENCH_trajectory.json accumulates one headline snapshot per PR
 * (bench_all.sh calls it after writing BENCH_summary.json). Returns
 * false and sets @p error on read/parse/write failure, leaving an
 * existing trajectory file untouched.
 */
bool appendTrajectory(const std::string &trajectory_path,
                      const std::string &summary_path,
                      const TrajectoryOptions &options,
                      std::string &error);

} // namespace cwsp::obs

#endif // CWSP_OBS_BASELINE_DIFF_HH
