/**
 * @file
 * Recovery-latency observability reports. Consumes the fault
 * campaign's stats JSON (the "recovery" section written by
 * fault::CampaignReport::writeJson) and produces the per-scheme
 * recovery-latency vs. runtime-overhead Pareto table behind
 * cwsp_analyze --recovery-report, in JSON and markdown. Also home to
 * the Chrome-trace validator (--validate-trace / ci_check telemetry
 * smoke) and the telemetry health warnings cwsp_analyze prints when
 * a stats file records trace drops or checkpoint-cache fallbacks.
 */

#ifndef CWSP_OBS_RECOVERY_REPORT_HH
#define CWSP_OBS_RECOVERY_REPORT_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace cwsp::obs {

/** Recovery phase count (mirrors core::RecoveryPhase). */
constexpr std::size_t kReportPhases = 5;

/** One scheme's row of the recovery Pareto table. */
struct RecoveryParetoRow
{
    std::string scheme;
    std::uint64_t crashes = 0;
    double meanRecoveryCycles = 0.0;
    double maxRecoveryCycles = 0.0;
    double meanLostWork = 0.0;
    /** Gmean fault-free runtime vs. baseline; 0 = unavailable. */
    double runtimeOverhead = 0.0;
    /** Cycle totals per phase, core::RecoveryPhase order. */
    double phaseCycles[kReportPhases] = {0, 0, 0, 0, 0};
    /**
     * Another scheme has both lower mean recovery latency and lower
     * runtime overhead (one strictly). Rows with unavailable
     * overhead never dominate and are never dominated.
     */
    bool dominated = false;
};

/** The assembled Pareto report. */
struct RecoveryReport
{
    std::vector<RecoveryParetoRow> rows; ///< figure scheme order
};

/**
 * Build the report from a campaign stats JSON document (the file
 * written by cwsp_faultcampaign --json / --stats-json). Returns
 * false and sets @p error when the document does not parse or holds
 * no "recovery" section.
 */
bool buildRecoveryReport(const std::string &campaign_json,
                         RecoveryReport &out, std::string &error);

/** Machine-readable form (rows keyed by "name" for the flattener). */
void writeRecoveryReportJson(std::ostream &os,
                             const RecoveryReport &report);

/** Markdown Pareto table, frontier rows starred. */
void writeRecoveryReportMarkdown(std::ostream &os,
                                 const RecoveryReport &report);

/**
 * Telemetry health warnings over a flattened metric map
 * (flattenMetricsJson): any metric path ending in "trace_drops" or
 * "dropped" with a positive value (the trace ring truncated), and
 * any "fallbacks" counter with a positive value (checkpoint-cache
 * evictions degraded a sweep to from-scratch execution). One
 * human-readable line per finding.
 */
std::vector<std::string>
telemetryWarnings(const std::map<std::string, double> &metrics);

/** Outcome of one Chrome-trace validation. */
struct TraceValidation
{
    std::size_t events = 0;        ///< traceEvents entries
    std::size_t counterEvents = 0; ///< "ph":"C" samples
    std::size_t counterTracks = 0; ///< distinct (name, tid) series
    std::vector<std::string> errors;

    bool ok() const { return errors.empty(); }
};

/**
 * Validate a Chrome/Perfetto trace document: it must parse, every
 * traceEvents entry must carry a ts, and every counter series
 * ("ph":"C", keyed by (name, tid)) must be monotone non-decreasing
 * in time. Returns false and sets @p error only on a parse failure;
 * semantic findings land in @p out.errors.
 */
bool validateChromeTrace(const std::string &json, TraceValidation &out,
                         std::string &error);

} // namespace cwsp::obs

#endif // CWSP_OBS_RECOVERY_REPORT_HH
