#include "obs/invariant_monitor.hh"

namespace cwsp::obs {

namespace {

/** Persist-side activity that must pause between crash and replay. */
bool
isPersistActivity(sim::TraceEventKind kind)
{
    using sim::TraceEventKind;
    switch (kind) {
      case TraceEventKind::PbEnqueue:
      case TraceEventKind::PbDrain:
      case TraceEventKind::PbStall:
      case TraceEventKind::PathSend:
      case TraceEventKind::WpqAdmit:
      case TraceEventKind::WpqFull:
      case TraceEventKind::UndoAppend:
        return true;
      default:
        return false;
    }
}

void
printEvent(std::ostream &os, const sim::TraceEvent &ev)
{
    os << "tick=" << ev.tick << " lane=" << ev.lane << " "
       << sim::traceKindName(ev.kind);
    if (ev.duration > 0)
        os << " dur=" << ev.duration;
    os << " arg0=" << ev.arg0 << " arg1=" << ev.arg1;
}

} // namespace

InvariantMonitor::InvariantMonitor(
    const InvariantMonitorConfig &config)
    : config_(config)
{
}

void
InvariantMonitor::reset()
{
    mcs_.clear();
    lanes_.clear();
    hasBegunRegion_ = false;
    lastBegunRegion_ = 0;
    crashed_ = false;
    recovered_ = false;
    eventsChecked_ = 0;
    violationCount_ = 0;
    violations_.clear();
    window_.clear();
}

void
InvariantMonitor::report(const std::string &invariant,
                         std::string detail)
{
    ++violationCount_;
    if (violations_.size() >= config_.maxViolations)
        return;
    InvariantViolation v;
    v.invariant = invariant;
    v.detail = std::move(detail);
    v.eventIndex = eventsChecked_ - 1;
    v.window.assign(window_.begin(), window_.end());
    violations_.push_back(std::move(v));
}

void
InvariantMonitor::onTraceEvent(const sim::TraceEvent &event)
{
    using sim::TraceEventKind;
    ++eventsChecked_;
    window_.push_back(event);
    while (window_.size() > config_.windowSize)
        window_.pop_front();

    if (crashed_ && !recovered_ && isPersistActivity(event.kind)) {
        report("crash-quiescence",
               "persist activity at tick " +
                   std::to_string(event.tick) +
                   " after crash, before recovery-slice replay");
    }

    switch (event.kind) {
      case TraceEventKind::RegionBegin: {
        auto region = static_cast<RegionId>(event.arg0);
        if (hasBegunRegion_ && region <= lastBegunRegion_) {
            report("region-order",
                   "region " + std::to_string(region) +
                       " begun after region " +
                       std::to_string(lastBegunRegion_) +
                       " (shared counter must increase)");
        }
        hasBegunRegion_ = true;
        lastBegunRegion_ = region;
        break;
      }
      case TraceEventKind::RbtRetire: {
        auto region = static_cast<RegionId>(event.arg0);
        LaneState &lane = lanes_[event.lane];
        if (lane.hasRetired && region <= lane.lastRetired) {
            report("retire-order",
                   "lane " + std::to_string(event.lane) +
                       " retired region " + std::to_string(region) +
                       " after region " +
                       std::to_string(lane.lastRetired));
        }
        lane.hasRetired = true;
        lane.lastRetired = region;
        break;
      }
      case TraceEventKind::UndoAppend: {
        McState &mc = mcs_[event.lane];
        if (mc.pendingUndo) {
            report("undo-coverage",
                   "undo append for addr " +
                       std::to_string(event.arg0) +
                       " while the append for addr " +
                       std::to_string(mc.pendingUndoAddr) +
                       " has no matching logged admission yet");
        }
        mc.pendingUndo = true;
        mc.pendingUndoTick = event.tick;
        mc.pendingUndoAddr = event.arg0;
        break;
      }
      case TraceEventKind::WpqAdmit: {
        McState &mc = mcs_[event.lane];
        bool logged = sim::wpqAdmitLogged(event.arg1);
        if (logged) {
            if (!mc.pendingUndo || mc.pendingUndoAddr != event.arg0 ||
                mc.pendingUndoTick != event.tick) {
                report("undo-coverage",
                       "speculative store to addr " +
                           std::to_string(event.arg0) +
                           " admitted at tick " +
                           std::to_string(event.tick) +
                           " without a matching undo-log append");
            }
            mc.pendingUndo = false;
        } else if (mc.pendingUndo) {
            report("undo-coverage",
                   "undo append for addr " +
                       std::to_string(mc.pendingUndoAddr) +
                       " followed by a non-logged admission");
            mc.pendingUndo = false;
        }

        // Occupancy replica: pop entries drained by admission time,
        // then admit. The real WPQ pops no later than this, so a
        // capacity excess here is an excess in the model too.
        while (!mc.drains.empty() && mc.drains.front() <= event.tick)
            mc.drains.pop_front();
        mc.drains.push_back(event.tick + event.duration);
        if (mc.drains.size() > config_.wpqCapacity) {
            report("wpq-capacity",
                   "lane " + std::to_string(event.lane) + " holds " +
                       std::to_string(mc.drains.size()) +
                       " entries, ADR capacity is " +
                       std::to_string(config_.wpqCapacity));
        }
        break;
      }
      case TraceEventKind::CrashInject:
        crashed_ = true;
        recovered_ = false;
        break;
      case TraceEventKind::RecoverySlice:
      case TraceEventKind::RecoveryResume:
        recovered_ = true;
        break;
      default:
        break;
    }
}

void
InvariantMonitor::finish()
{
    for (auto &[lane, mc] : mcs_) {
        if (mc.pendingUndo) {
            report("undo-coverage",
                   "stream ended with an unmatched undo append for "
                   "addr " +
                       std::to_string(mc.pendingUndoAddr) +
                       " on lane " + std::to_string(lane));
            mc.pendingUndo = false;
        }
    }
}

void
printViolations(std::ostream &os,
                const std::vector<InvariantViolation> &violations)
{
    for (const auto &v : violations) {
        os << "VIOLATION [" << v.invariant << "] at event #"
           << v.eventIndex << ": " << v.detail << "\n";
        for (const auto &ev : v.window) {
            os << "    ";
            printEvent(os, ev);
            os << "\n";
        }
    }
}

std::vector<InvariantViolation>
checkInvariants(const std::vector<sim::TraceEvent> &events,
                const InvariantMonitorConfig &config)
{
    InvariantMonitor monitor(config);
    for (const auto &ev : events)
        monitor.onTraceEvent(ev);
    monitor.finish();
    return monitor.violations();
}

} // namespace cwsp::obs
