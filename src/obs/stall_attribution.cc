#include "obs/stall_attribution.hh"

#include <iomanip>

namespace cwsp::obs {

namespace {

std::size_t
clampCause(std::uint64_t raw)
{
    return raw < sim::kNumStallCauses ? static_cast<std::size_t>(raw)
                                      : 0;
}

} // namespace

StallAttribution
attributeStalls(const std::vector<sim::TraceEvent> &events)
{
    StallAttribution a;
    for (const auto &ev : events) {
        switch (ev.kind) {
          case sim::TraceEventKind::PbStall:
          case sim::TraceEventKind::RbtStall:
            a.cycles[clampCause(ev.arg0)] += ev.duration;
            ++a.events[clampCause(ev.arg0)];
            a.totalStallCycles += ev.duration;
            ++a.totalStallEvents;
            break;
          case sim::TraceEventKind::SchemeDrain:
            a.cycles[clampCause(ev.arg1)] += ev.duration;
            ++a.events[clampCause(ev.arg1)];
            a.totalStallCycles += ev.duration;
            ++a.totalStallEvents;
            break;
          case sim::TraceEventKind::WpqFull:
            a.mcQueueWaitCycles += ev.duration;
            break;
          default:
            break;
        }
    }
    return a;
}

void
printAttributionTable(std::ostream &os,
                      const std::vector<AttributionRow> &rows)
{
    os << std::left << std::setw(12) << "scheme" << std::setw(12)
       << "app" << std::right << std::setw(12) << "stall_cyc"
       << std::setw(8) << "stall%";
    for (std::size_t c = 0; c < sim::kNumStallCauses; ++c) {
        os << std::setw(12)
           << sim::stallCauseName(static_cast<sim::StallCause>(c));
    }
    os << std::setw(12) << "mc_wait" << std::setw(7) << "check"
       << "\n";

    for (const auto &row : rows) {
        const auto &a = row.attribution;
        os << std::left << std::setw(12) << row.scheme
           << std::setw(12) << row.app << std::right << std::setw(12)
           << a.totalStallCycles;
        double pct =
            row.runCycles == 0
                ? 0.0
                : 100.0 * static_cast<double>(a.totalStallCycles) /
                      static_cast<double>(row.runCycles);
        os << std::setw(7) << std::fixed << std::setprecision(1)
           << pct << "%";
        for (auto cyc : a.cycles)
            os << std::setw(12) << cyc;
        os << std::setw(12) << a.mcQueueWaitCycles << std::setw(7)
           << (a.sumsMatch() ? "ok" : "FAIL") << "\n";
    }
}

} // namespace cwsp::obs
