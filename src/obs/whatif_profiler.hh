/**
 * @file
 * Counterfactual what-if profiler. For each (scheme, app) design
 * point, re-simulate the point with exactly one resource idealized
 * (infinite persist buffer, infinite WPQ, unbounded RBT, ideal
 * persist path, free undo logging, free region boundaries) and
 * decompose the measured overhead versus the unpersisted baseline
 * into a per-resource waterfall:
 *
 *     overhead   = cycles(real)  - cycles(baseline)
 *     saved[R]   = cycles(real)  - cycles(ideal R)      (signed)
 *     residual   = overhead - sum(saved[R])
 *
 * The residual is the interaction term — cycles that only disappear
 * when several resources are relaxed together (or appear twice when
 * two idealizations each recover the same overlapped wait). By
 * construction components + residual reconcile with the measured
 * overhead bit-exactly, in ticks.
 *
 * Every idealization is a flag in SystemConfig that participates in
 * the canonical config serialization, so idealized runs memoize in
 * the persistent result cache under their own keys. An optional
 * cross-check runs a traced simulation of the real point and compares
 * the waterfall against the stall-attribution decomposition (PR 3);
 * order-of-magnitude disagreements become report warnings, never
 * errors — an idealization can legitimately recover more than the
 * attributed stall (queueing shifted downstream) or less (overlap).
 */

#ifndef CWSP_OBS_WHATIF_PROFILER_HH
#define CWSP_OBS_WHATIF_PROFILER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "driver/batch_runner.hh"
#include "obs/sensitivity.hh"
#include "sim/trace.hh"
#include "workloads/workload.hh"

namespace cwsp::obs {

/** The resources the profiler can idealize, one at a time. */
enum class IdealResource : std::uint8_t {
    PersistBuffer = 0, ///< never-full PB (Capri: redo buffers too)
    Wpq,               ///< never-full WPQ at every MC
    Rbt,               ///< unbounded region boundary table
    PersistPath,       ///< zero-latency, infinite-bandwidth path
    UndoLog,           ///< undo-log media work at service cost 1x
    RegionBoundary,    ///< region-boundary commits cost zero
};

inline constexpr std::size_t kNumIdealResources = 6;

/** Stable snake_case name ("persist_buffer", ...). */
const char *idealResourceName(IdealResource r);

/**
 * StallCause this resource maps onto for the attribution cross-check
 * (sim::StallCause as an int), or -1 when none exists (region
 * boundaries are compiler-inserted work, not a stall cause).
 */
int idealResourceStallCause(IdealResource r);

/**
 * Copy of @p cfg with exactly resource @p r idealized. Every flag
 * this sets participates in core::serializeSystemConfig, so the
 * result never aliases the real point in the result cache.
 */
core::SystemConfig idealizedConfig(const core::SystemConfig &cfg,
                                   IdealResource r);

/** One (scheme, app) waterfall. */
struct WhatIfEntry
{
    std::string scheme;
    std::string app;
    Tick baselineCycles = 0; ///< unpersisted baseline scheme
    Tick realCycles = 0;     ///< the scheme, nothing idealized
    Tick idealCycles[kNumIdealResources] = {};
    /** realCycles - baselineCycles (>= 0 in practice, kept signed). */
    std::int64_t overhead = 0;
    /** realCycles - idealCycles[r]; negative = idealizing hurt. */
    std::int64_t saved[kNumIdealResources] = {};
    /** overhead - sum(saved); the interaction term. */
    std::int64_t residual = 0;
    /** argmax saved (ties: lowest enum); meaningful if topSaved > 0. */
    IdealResource topBottleneck = IdealResource::PersistBuffer;
    std::int64_t topSaved = 0;

    // Cross-check against stall attribution (when enabled).
    bool crossChecked = false;
    std::uint64_t stallCycles[sim::kNumStallCauses] = {};
    std::uint64_t totalStallCycles = 0;
    std::vector<std::string> warnings;

    /** The reconciliation invariant the report relies on. */
    bool
    reconciles() const
    {
        std::int64_t sum = 0;
        for (auto s : saved)
            sum += s;
        return sum + residual == overhead &&
               overhead ==
                   static_cast<std::int64_t>(realCycles) -
                       static_cast<std::int64_t>(baselineCycles);
    }
};

/** Per-scheme aggregate across the profiled apps. */
struct WhatIfSchemeSummary
{
    std::string scheme;
    std::int64_t overheadTotal = 0;
    std::int64_t savedTotal[kNumIdealResources] = {};
    std::int64_t residualTotal = 0;
    /** Gmean of real/baseline cycles over apps (1.0 = no overhead). */
    double overheadGmean = 1.0;
    IdealResource topBottleneck = IdealResource::PersistBuffer;
    std::int64_t topSaved = 0;
    std::size_t warningCount = 0;
};

struct WhatIfOptions
{
    /** Cross-validate against stall attribution (one traced sim per
     *  non-baseline point, run outside the result cache). */
    bool crossCheck = true;
    /** Trace ring capacity for the cross-check sims. */
    std::size_t traceCap = 1u << 20;
    std::uint64_t maxInstrs = 2'000'000'000;
};

/** The assembled report. */
struct WhatIfReport
{
    std::vector<WhatIfEntry> entries;        ///< scheme-major order
    std::vector<WhatIfSchemeSummary> schemes;
    driver::BatchStats batch{}; ///< runner stats after the batch
};

/**
 * Profile @p schemes x @p apps through @p runner (one batch: real +
 * baseline + one point per idealizable resource, all cache-eligible).
 * The baseline scheme, if listed, gets a trivial all-zero waterfall
 * and no idealized runs.
 */
WhatIfReport runWhatIf(driver::BatchRunner &runner,
                       const std::vector<std::string> &schemes,
                       const std::vector<workloads::AppProfile> &apps,
                       const WhatIfOptions &options = {});

/**
 * Markdown / JSON writers. @p sensitivity, when non-null, appends the
 * knob-sensitivity ranking section to the same document.
 */
void writeWhatIfMarkdown(
    std::ostream &os, const WhatIfReport &report,
    const std::vector<SensitivityReport> *sensitivity = nullptr);
void writeWhatIfJson(
    std::ostream &os, const WhatIfReport &report,
    const std::vector<SensitivityReport> *sensitivity = nullptr);

} // namespace cwsp::obs

#endif // CWSP_OBS_WHATIF_PROFILER_HH
