/**
 * @file
 * Region lifecycle reconstruction: folds the point events the RBT and
 * scheme layers emit (RegionBegin/RegionEnd/RegionPersist) back into
 * per-region spans with phase timings —
 *
 *   begin --execute--> end --drain--> own-persist --order--> retire
 *
 * execute is the region's committed work, drain is the tail of its
 * own stores still in flight past the closing boundary, and order
 * wait is the extra time the in-order RBT cascade holds the entry for
 * its predecessors (Fig. 9's PendingWrs discipline).
 */

#ifndef CWSP_OBS_SPAN_BUILDER_HH
#define CWSP_OBS_SPAN_BUILDER_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "sim/trace.hh"
#include "sim/types.hh"

namespace cwsp::obs {

/** One reconstructed region lifecycle. */
struct RegionSpan
{
    RegionId region = 0;
    std::uint64_t staticRegion = 0;
    std::uint16_t lane = 0;
    Tick begin = 0;
    Tick end = 0;        ///< closing boundary (valid if closed)
    Tick persistMax = 0; ///< last own-store ack (valid if retired)
    Tick retire = 0;     ///< RBT departure (valid if retired)
    bool closed = false;
    bool retired = false;

    Tick executeCycles() const { return closed ? end - begin : 0; }

    /** Own stores still draining past the closing boundary. */
    Tick
    drainCycles() const
    {
        return retired && persistMax > end ? persistMax - end : 0;
    }

    /** Extra hold for predecessors in the in-order cascade. */
    Tick
    orderWaitCycles() const
    {
        if (!retired)
            return 0;
        Tick drained = persistMax > end ? persistMax : end;
        return retire > drained ? retire - drained : 0;
    }
};

/** Aggregate over a span set (printed by cwsp_analyze --spans). */
struct SpanSummary
{
    std::uint64_t begun = 0;
    std::uint64_t closed = 0;
    std::uint64_t retired = 0;
    std::uint64_t executeCycles = 0;
    std::uint64_t drainCycles = 0;
    std::uint64_t orderWaitCycles = 0;
    Tick maxDrain = 0;
    Tick maxOrderWait = 0;
};

/**
 * TraceSink that assembles spans online; also usable offline by
 * feeding it a TraceBuffer snapshot. Requires the region category in
 * the producing buffer's mask.
 */
class SpanBuilder final : public sim::TraceSink
{
  public:
    void onTraceEvent(const sim::TraceEvent &event) override;

    /** Spans seen so far, ordered by begin tick (then region id). */
    std::vector<RegionSpan> spans() const;

    void clear() { spans_.clear(); }

  private:
    std::vector<RegionSpan> spans_; ///< in RegionBegin order

    RegionSpan *findOpen(RegionId region, std::uint16_t lane);
};

/** Offline convenience: build spans from a snapshot. */
std::vector<RegionSpan>
buildSpans(const std::vector<sim::TraceEvent> &events);

SpanSummary summarizeSpans(const std::vector<RegionSpan> &spans);

/** Human-readable summary block. */
void printSpanSummary(std::ostream &os, const SpanSummary &summary);

} // namespace cwsp::obs

#endif // CWSP_OBS_SPAN_BUILDER_HH
