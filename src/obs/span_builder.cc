#include "obs/span_builder.hh"

#include <algorithm>

namespace cwsp::obs {

void
SpanBuilder::onTraceEvent(const sim::TraceEvent &event)
{
    using sim::TraceEventKind;
    switch (event.kind) {
      case TraceEventKind::RegionBegin: {
        RegionSpan span;
        span.region = static_cast<RegionId>(event.arg0);
        span.staticRegion = event.arg1;
        span.lane = event.lane;
        span.begin = event.tick;
        spans_.push_back(span);
        break;
      }
      case TraceEventKind::RegionEnd: {
        auto *span =
            findOpen(static_cast<RegionId>(event.arg0), event.lane);
        if (span && !span->closed) {
            span->closed = true;
            span->end = event.tick;
        }
        break;
      }
      case TraceEventKind::RegionPersist: {
        auto *span =
            findOpen(static_cast<RegionId>(event.arg0), event.lane);
        if (span) {
            span->retired = true;
            span->retire = event.tick;
            span->persistMax = event.arg1;
            // A retired region is necessarily closed; a masked or
            // ring-dropped RegionEnd leaves end at the best bound we
            // have (retirement can't precede the boundary).
            if (!span->closed) {
                span->closed = true;
                span->end = std::min(event.tick, span->persistMax);
                if (span->end < span->begin)
                    span->end = span->begin;
            }
        }
        break;
      }
      default:
        break;
    }
}

RegionSpan *
SpanBuilder::findOpen(RegionId region, std::uint16_t lane)
{
    // Walk from the newest span: RegionEnd always targets the lane's
    // most recent region and RegionPersist the oldest unretired one,
    // both within RBT depth (tens) of the tail in practice.
    for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
        if (it->region == region && it->lane == lane)
            return &*it;
    }
    return nullptr;
}

std::vector<RegionSpan>
SpanBuilder::spans() const
{
    auto out = spans_;
    std::stable_sort(out.begin(), out.end(),
                     [](const RegionSpan &a, const RegionSpan &b) {
                         if (a.begin != b.begin)
                             return a.begin < b.begin;
                         return a.region < b.region;
                     });
    return out;
}

std::vector<RegionSpan>
buildSpans(const std::vector<sim::TraceEvent> &events)
{
    SpanBuilder builder;
    for (const auto &ev : events)
        builder.onTraceEvent(ev);
    return builder.spans();
}

SpanSummary
summarizeSpans(const std::vector<RegionSpan> &spans)
{
    SpanSummary s;
    s.begun = spans.size();
    for (const auto &span : spans) {
        if (span.closed)
            ++s.closed;
        if (span.retired)
            ++s.retired;
        s.executeCycles += span.executeCycles();
        s.drainCycles += span.drainCycles();
        s.orderWaitCycles += span.orderWaitCycles();
        s.maxDrain = std::max(s.maxDrain, span.drainCycles());
        s.maxOrderWait =
            std::max(s.maxOrderWait, span.orderWaitCycles());
    }
    return s;
}

void
printSpanSummary(std::ostream &os, const SpanSummary &summary)
{
    os << "regions: begun " << summary.begun << ", closed "
       << summary.closed << ", retired " << summary.retired << "\n";
    os << "phase cycles: execute " << summary.executeCycles
       << ", drain " << summary.drainCycles << " (max "
       << summary.maxDrain << "), order-wait "
       << summary.orderWaitCycles << " (max " << summary.maxOrderWait
       << ")\n";
}

} // namespace cwsp::obs
