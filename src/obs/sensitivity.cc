#include "obs/sensitivity.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/config.hh"

namespace cwsp::obs {

namespace {

/** A perturbable runtime sizing knob over SystemConfig. */
struct KnobDef
{
    const char *name;
    double (*get)(const core::SystemConfig &);
    void (*set)(core::SystemConfig &, double);
    /** Null = applies to every scheme. */
    bool (*applies)(const core::SystemConfig &);
};

std::uint32_t
toCapacity(double v)
{
    double r = std::max(1.0, std::round(v));
    return static_cast<std::uint32_t>(r);
}

const KnobDef kKnobs[] = {
    {"pb_capacity",
     [](const core::SystemConfig &c) {
         return static_cast<double>(c.scheme.pbCapacity);
     },
     [](core::SystemConfig &c, double v) {
         c.scheme.pbCapacity = toCapacity(v);
     },
     nullptr},
    {"rbt_capacity",
     [](const core::SystemConfig &c) {
         return static_cast<double>(c.scheme.rbtCapacity);
     },
     [](core::SystemConfig &c, double v) {
         c.scheme.rbtCapacity = toCapacity(v);
     },
     nullptr},
    {"wpq_capacity",
     [](const core::SystemConfig &c) {
         return static_cast<double>(c.hierarchy.wpqCapacity);
     },
     [](core::SystemConfig &c, double v) {
         c.hierarchy.wpqCapacity = toCapacity(v);
     },
     nullptr},
    {"path_bandwidth_gbs",
     [](const core::SystemConfig &c) {
         return c.scheme.path.bandwidthGBs;
     },
     [](core::SystemConfig &c, double v) {
         c.scheme.path.bandwidthGBs = v;
     },
     nullptr},
    {"path_latency_cycles",
     [](const core::SystemConfig &c) {
         return static_cast<double>(c.scheme.path.oneWayLatency);
     },
     [](core::SystemConfig &c, double v) {
         c.scheme.path.oneWayLatency = toCapacity(v);
     },
     nullptr},
    {"log_service_factor",
     [](const core::SystemConfig &c) {
         return c.hierarchy.logServiceFactor;
     },
     [](core::SystemConfig &c, double v) {
         c.hierarchy.logServiceFactor = std::max(1.0, v);
     },
     nullptr},
    {"wb_capacity",
     [](const core::SystemConfig &c) {
         return static_cast<double>(c.hierarchy.wbCapacity);
     },
     [](core::SystemConfig &c, double v) {
         c.hierarchy.wbCapacity = toCapacity(v);
     },
     nullptr},
    {"capri_redo_lines",
     [](const core::SystemConfig &c) {
         return static_cast<double>(c.scheme.capriRedoLines);
     },
     [](core::SystemConfig &c, double v) {
         c.scheme.capriRedoLines = toCapacity(v);
     },
     [](const core::SystemConfig &c) {
         return c.scheme.name == "capri";
     }},
    {"replay_mlp",
     [](const core::SystemConfig &c) {
         return static_cast<double>(c.scheme.replayMlp);
     },
     [](core::SystemConfig &c, double v) {
         c.scheme.replayMlp = toCapacity(v);
     },
     [](const core::SystemConfig &c) {
         return c.scheme.name == "replaycache";
     }},
};

double
gmeanRatio(const std::vector<double> &ratios)
{
    if (ratios.empty())
        return 0.0;
    double logsum = 0.0;
    for (double r : ratios)
        logsum += std::log(r);
    return std::exp(logsum / static_cast<double>(ratios.size()));
}

std::string
formatValue(double v)
{
    char buf[48];
    if (v == std::round(v) && std::abs(v) < 1e15)
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    else
        std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

} // namespace

std::vector<SensitivityReport>
runSensitivity(driver::BatchRunner &runner,
               const std::vector<std::string> &schemes,
               const std::vector<workloads::AppProfile> &apps,
               const SensitivityOptions &options)
{
    constexpr std::size_t kNumKnobs = std::size(kKnobs);

    // Lay out every design point of every scheme in one flat batch so
    // the worker pool sees maximal parallelism. kInvalid marks slots
    // whose perturbed value collapsed onto the default (integer knobs
    // at capacity 1): those reuse the default result.
    constexpr std::size_t kInvalid = ~static_cast<std::size_t>(0);
    std::vector<driver::DesignPoint> points;
    auto add = [&](const core::SystemConfig &cfg,
                   const workloads::AppProfile &app) {
        driver::DesignPoint p;
        p.app = app;
        p.config = cfg;
        p.maxInstrs = options.maxInstrs;
        points.push_back(p);
        return points.size() - 1;
    };

    struct SchemePlan
    {
        std::string scheme;
        std::vector<std::size_t> knobIds; ///< indices into kKnobs
        std::vector<std::size_t> baseIdx; ///< per app
        std::vector<std::size_t> defIdx;  ///< per app
        /** [knob][0=lo,1=hi][app] */
        std::vector<std::array<std::vector<std::size_t>, 2>> varIdx;
        std::vector<std::array<double, 3>> values; ///< lo, def, hi
    };

    const core::SystemConfig baseCfg =
        core::makeSystemConfig("baseline");

    std::vector<SchemePlan> plans;
    for (const std::string &scheme : schemes) {
        if (scheme == "baseline")
            continue;
        SchemePlan plan;
        plan.scheme = scheme;
        const core::SystemConfig defCfg =
            core::makeSystemConfig(scheme);
        for (std::size_t k = 0; k < kNumKnobs; ++k) {
            if (kKnobs[k].applies && !kKnobs[k].applies(defCfg))
                continue;
            plan.knobIds.push_back(k);
        }
        for (const auto &app : apps) {
            plan.baseIdx.push_back(add(baseCfg, app));
            plan.defIdx.push_back(add(defCfg, app));
        }
        plan.varIdx.resize(plan.knobIds.size());
        plan.values.resize(plan.knobIds.size());
        for (std::size_t i = 0; i < plan.knobIds.size(); ++i) {
            const KnobDef &def = kKnobs[plan.knobIds[i]];
            double dv = def.get(defCfg);
            core::SystemConfig lo = defCfg;
            def.set(lo, dv * 0.5);
            core::SystemConfig hi = defCfg;
            def.set(hi, dv * 2.0);
            plan.values[i] = {def.get(lo), dv, def.get(hi)};
            for (const auto &app : apps) {
                plan.varIdx[i][0].push_back(
                    plan.values[i][0] == dv ? kInvalid : add(lo, app));
                plan.varIdx[i][1].push_back(
                    plan.values[i][2] == dv ? kInvalid : add(hi, app));
            }
        }
        plans.push_back(std::move(plan));
    }

    const std::vector<core::RunResult> results = runner.runAll(points);

    std::vector<SensitivityReport> reports;
    for (const SchemePlan &plan : plans) {
        SensitivityReport report;
        report.scheme = plan.scheme;
        for (std::size_t i = 0; i < plan.knobIds.size(); ++i) {
            KnobSensitivity ks;
            ks.knob = kKnobs[plan.knobIds[i]].name;
            ks.loValue = plan.values[i][0];
            ks.defaultValue = plan.values[i][1];
            ks.hiValue = plan.values[i][2];

            std::vector<double> loR, defR, hiR, spans;
            for (std::size_t a = 0; a < apps.size(); ++a) {
                double base = static_cast<double>(
                    results[plan.baseIdx[a]].cycles);
                double dc = static_cast<double>(
                    results[plan.defIdx[a]].cycles);
                std::size_t li = plan.varIdx[i][0][a];
                std::size_t hi2 = plan.varIdx[i][1][a];
                double lc = li == kInvalid
                                ? dc
                                : static_cast<double>(
                                      results[li].cycles);
                double hc = hi2 == kInvalid
                                ? dc
                                : static_cast<double>(
                                      results[hi2].cycles);
                if (base > 0.0) {
                    loR.push_back(lc / base);
                    defR.push_back(dc / base);
                    hiR.push_back(hc / base);
                }
                if (dc > 0.0) {
                    double mx = std::max({lc, dc, hc});
                    double mn = std::min({lc, dc, hc});
                    spans.push_back((mx - mn) / dc);
                }
            }
            ks.loSlowdown = gmeanRatio(loR);
            ks.defaultSlowdown = gmeanRatio(defR);
            ks.hiSlowdown = gmeanRatio(hiR);
            double sum = 0.0;
            for (double s : spans)
                sum += s;
            ks.score = spans.empty()
                           ? 0.0
                           : sum / static_cast<double>(spans.size());
            report.knobs.push_back(std::move(ks));
        }
        std::sort(report.knobs.begin(), report.knobs.end(),
                  [](const KnobSensitivity &a,
                     const KnobSensitivity &b) {
                      if (a.score != b.score)
                          return a.score > b.score;
                      return a.knob < b.knob;
                  });
        for (std::size_t i = 0; i < report.knobs.size(); ++i)
            report.knobs[i].rank = static_cast<int>(i) + 1;
        reports.push_back(std::move(report));
    }
    return reports;
}

void
writeSensitivityJson(std::ostream &os,
                     const std::vector<SensitivityReport> &reports,
                     const std::string &indent)
{
    os << "[";
    for (std::size_t s = 0; s < reports.size(); ++s) {
        const SensitivityReport &r = reports[s];
        os << (s ? "," : "") << "\n"
           << indent << "  {\"scheme\": \"" << r.scheme
           << "\", \"knobs\": [";
        for (std::size_t k = 0; k < r.knobs.size(); ++k) {
            const KnobSensitivity &ks = r.knobs[k];
            char buf[256];
            std::snprintf(
                buf, sizeof(buf),
                "{\"name\": \"%s\", \"rank\": %d, \"score\": %.6g, "
                "\"lo\": {\"value\": %.6g, \"slowdown\": %.6g}, "
                "\"default\": {\"value\": %.6g, \"slowdown\": %.6g}, "
                "\"hi\": {\"value\": %.6g, \"slowdown\": %.6g}}",
                ks.knob.c_str(), ks.rank, ks.score, ks.loValue,
                ks.loSlowdown, ks.defaultValue, ks.defaultSlowdown,
                ks.hiValue, ks.hiSlowdown);
            os << (k ? ",\n" + indent + "    " : "\n" + indent + "    ")
               << buf;
        }
        os << (r.knobs.empty() ? "]" : "\n" + indent + "  ]") << "}";
    }
    os << (reports.empty() ? "]" : "\n" + indent + "]");
}

void
writeSensitivityMarkdown(std::ostream &os,
                         const std::vector<SensitivityReport> &reports)
{
    os << "## Knob sensitivity ranking\n\n"
       << "Each runtime sizing knob perturbed x0.5 / x2 around the "
          "default; score is the\nmean relative cycle span over the "
          "profiled apps (higher = the knob matters\nmore). Slowdowns "
          "are gmean cycles vs. the unpersisted baseline.\n";
    for (const SensitivityReport &r : reports) {
        os << "\n### " << r.scheme << "\n\n"
           << "| rank | knob | lo -> default -> hi | slowdown "
              "lo/def/hi | score |\n"
           << "|-----:|------|---------------------|-----------"
              "--------|------:|\n";
        for (const KnobSensitivity &ks : r.knobs) {
            char sd[96];
            std::snprintf(sd, sizeof(sd), "%.4f / %.4f / %.4f",
                          ks.loSlowdown, ks.defaultSlowdown,
                          ks.hiSlowdown);
            char score[32];
            std::snprintf(score, sizeof(score), "%.5f", ks.score);
            os << "| " << ks.rank << " | `" << ks.knob << "` | "
               << formatValue(ks.loValue) << " -> "
               << formatValue(ks.defaultValue) << " -> "
               << formatValue(ks.hiValue) << " | " << sd << " | "
               << score << " |\n";
        }
    }
}

} // namespace cwsp::obs
