#include "obs/baseline_diff.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace cwsp::obs {

namespace {

/**
 * Minimal recursive-descent JSON walker. Instead of building a value
 * tree it flattens numeric leaves straight into the metric map —
 * stats files are wide but shallow, and this keeps the differ free
 * of a DOM it would only traverse once.
 */
class MetricFlattener
{
  public:
    MetricFlattener(const std::string &text,
                    std::map<std::string, double> &out)
        : text_(text), out_(out)
    {
    }

    void
    run()
    {
        skipWs();
        parseValue("");
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
    }

  private:
    const std::string &text_;
    std::map<std::string, double> &out_;
    std::size_t pos_ = 0;

    [[noreturn]] void
    fail(const std::string &what)
    {
        throw std::runtime_error("JSON parse error at offset " +
                                 std::to_string(pos_) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string s;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return s;
            if (c != '\\') {
                s += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': s += '"'; break;
              case '\\': s += '\\'; break;
              case '/': s += '/'; break;
              case 'n': s += '\n'; break;
              case 't': s += '\t'; break;
              case 'r': s += '\r'; break;
              case 'b': s += '\b'; break;
              case 'f': s += '\f'; break;
              case 'u':
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                // Metric names are ASCII; a non-ASCII code point
                // only needs to round-trip as *some* stable byte.
                pos_ += 4;
                s += '?';
                break;
              default: fail("bad escape");
            }
        }
    }

    double
    parseNumber()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(
                    text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            fail("expected number");
        return std::strtod(text_.substr(start, pos_ - start).c_str(),
                           nullptr);
    }

    void
    skipLiteral(const char *lit)
    {
        for (const char *p = lit; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("expected literal ") + lit);
            ++pos_;
        }
    }

    /**
     * Peek an object element's "name" member without consuming it,
     * so array entries can be keyed the google-benchmark way.
     */
    std::string
    peekObjectName()
    {
        std::size_t saved = pos_;
        std::string name;
        expect('{');
        skipWs();
        while (peek() != '}') {
            std::string key = parseString();
            skipWs();
            expect(':');
            skipWs();
            if (key == "name" && peek() == '"') {
                name = parseString();
                break;
            }
            skipValueOnly();
            skipWs();
            if (peek() == ',') {
                ++pos_;
                skipWs();
            }
        }
        pos_ = saved;
        return name;
    }

    /** Consume a value without emitting metrics (for peeking). */
    void
    skipValueOnly()
    {
        char c = peek();
        if (c == '"') {
            parseString();
        } else if (c == '{') {
            ++pos_;
            skipWs();
            if (peek() == '}') {
                ++pos_;
                return;
            }
            while (true) {
                parseString();
                skipWs();
                expect(':');
                skipWs();
                skipValueOnly();
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    skipWs();
                    continue;
                }
                expect('}');
                return;
            }
        } else if (c == '[') {
            ++pos_;
            skipWs();
            if (peek() == ']') {
                ++pos_;
                return;
            }
            while (true) {
                skipValueOnly();
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    skipWs();
                    continue;
                }
                expect(']');
                return;
            }
        } else if (c == 't') {
            skipLiteral("true");
        } else if (c == 'f') {
            skipLiteral("false");
        } else if (c == 'n') {
            skipLiteral("null");
        } else {
            parseNumber();
        }
    }

    static std::string
    join(const std::string &prefix, const std::string &key)
    {
        return prefix.empty() ? key : prefix + "." + key;
    }

    void
    parseValue(const std::string &path)
    {
        char c = peek();
        if (c == '{') {
            ++pos_;
            skipWs();
            if (peek() == '}') {
                ++pos_;
                return;
            }
            while (true) {
                std::string key = parseString();
                skipWs();
                expect(':');
                skipWs();
                parseValue(join(path, key));
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    skipWs();
                    continue;
                }
                expect('}');
                return;
            }
        }
        if (c == '[') {
            ++pos_;
            skipWs();
            if (peek() == ']') {
                ++pos_;
                return;
            }
            std::size_t index = 0;
            while (true) {
                std::string key;
                skipWs();
                if (peek() == '{') {
                    std::string name = peekObjectName();
                    if (!name.empty())
                        key = "[" + name + "]";
                }
                if (key.empty())
                    key = "[" + std::to_string(index) + "]";
                parseValue(path + key);
                ++index;
                skipWs();
                if (peek() == ',') {
                    ++pos_;
                    skipWs();
                    continue;
                }
                expect(']');
                return;
            }
        }
        if (c == '"') {
            parseString();
            return;
        }
        if (c == 't') {
            skipLiteral("true");
            return;
        }
        if (c == 'f') {
            skipLiteral("false");
            return;
        }
        if (c == 'n') {
            skipLiteral("null");
            return;
        }
        out_[path] = parseNumber();
    }
};

bool
ignored(const std::string &metric, const DiffOptions &options)
{
    for (const auto &sub : options.ignoreSubstrings) {
        if (!sub.empty() && metric.find(sub) != std::string::npos)
            return true;
    }
    return false;
}

/** Magnitude of relative change, for sorting reports. */
double
changeMagnitude(const MetricDelta &d)
{
    if (d.before == 0.0 || d.after == 0.0 ||
        !std::isfinite(d.ratio)) {
        return std::numeric_limits<double>::infinity();
    }
    return std::fabs(std::log(d.ratio));
}

} // namespace

std::map<std::string, double>
flattenMetricsJson(const std::string &json)
{
    std::map<std::string, double> out;
    MetricFlattener(json, out).run();
    return out;
}

DiffResult
diffMetrics(const std::string &before_json,
            const std::string &after_json, const DiffOptions &options)
{
    auto before = flattenMetricsJson(before_json);
    auto after = flattenMetricsJson(after_json);

    DiffResult result;
    for (const auto &[metric, old_value] : before) {
        auto it = after.find(metric);
        if (it == after.end()) {
            if (!ignored(metric, options))
                result.onlyBefore.push_back(metric);
            continue;
        }
        if (ignored(metric, options)) {
            ++result.ignored;
            continue;
        }
        ++result.compared;
        double new_value = it->second;
        MetricDelta delta{metric, old_value, new_value, 1.0};
        if (old_value == new_value)
            continue;
        if (old_value == 0.0) {
            delta.ratio =
                std::numeric_limits<double>::infinity();
            result.regressions.push_back(delta);
            continue;
        }
        delta.ratio = new_value / old_value;
        if (delta.ratio > 1.0 + options.threshold)
            result.regressions.push_back(delta);
        else if (delta.ratio < 1.0 - options.threshold)
            result.improvements.push_back(delta);
    }
    for (const auto &[metric, value] : after) {
        (void)value;
        if (!before.count(metric) && !ignored(metric, options))
            result.onlyAfter.push_back(metric);
    }

    auto by_magnitude = [](const MetricDelta &a,
                           const MetricDelta &b) {
        double ma = changeMagnitude(a);
        double mb = changeMagnitude(b);
        if (ma != mb)
            return ma > mb;
        return a.metric < b.metric;
    };
    std::sort(result.regressions.begin(), result.regressions.end(),
              by_magnitude);
    std::sort(result.improvements.begin(),
              result.improvements.end(), by_magnitude);
    return result;
}

bool
diffMetricFiles(const std::string &before_path,
                const std::string &after_path,
                const DiffOptions &options, DiffResult &result,
                std::string &error)
{
    auto slurp = [&error](const std::string &path,
                          std::string &out) {
        std::ifstream is(path);
        if (!is) {
            error = "cannot open " + path;
            return false;
        }
        std::ostringstream ss;
        ss << is.rdbuf();
        out = ss.str();
        return true;
    };
    std::string before_json;
    std::string after_json;
    if (!slurp(before_path, before_json) ||
        !slurp(after_path, after_json)) {
        return false;
    }
    try {
        result = diffMetrics(before_json, after_json, options);
    } catch (const std::exception &ex) {
        error = ex.what();
        return false;
    }
    return true;
}

namespace {

/** Escape a string for embedding in a JSON document. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default: out += c;
        }
    }
    return out;
}

/** Shortest round-trippable decimal for a metric value. */
std::string
formatNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    return buf;
}

/**
 * Canonical trajectory key: strip a leading "binaries[<name>]."
 * container prefix. Summaries nest each bench binary's report under
 * binaries[] while older (and single-binary) summaries are flat;
 * normalizing on append keeps one metric one key across PRs, so the
 * ci_check floor and --diff over trajectory files line up entries
 * regardless of which summary shape produced them.
 */
std::string
normalizeTrajectoryKey(const std::string &metric)
{
    constexpr const char *kPrefix = "binaries[";
    if (metric.compare(0, std::strlen(kPrefix), kPrefix) != 0)
        return metric;
    std::size_t close = metric.find("].");
    if (close == std::string::npos)
        return metric;
    return metric.substr(close + 2);
}

} // namespace

bool
appendTrajectory(const std::string &trajectory_path,
                 const std::string &summary_path,
                 const TrajectoryOptions &options, std::string &error)
{
    std::string summary;
    {
        std::ifstream is(summary_path);
        if (!is) {
            error = "cannot open " + summary_path;
            return false;
        }
        std::ostringstream ss;
        ss << is.rdbuf();
        summary = ss.str();
    }
    std::map<std::string, double> metrics;
    try {
        metrics = flattenMetricsJson(summary);
    } catch (const std::exception &ex) {
        error = summary_path + ": " + ex.what();
        return false;
    }

    std::ostringstream entry;
    // The label is serialized as "name" so flattenMetricsJson (and
    // therefore --diff over two trajectory files) keys each entry by
    // its label instead of its array position.
    entry << " {\n  \"name\": \"" << jsonEscape(options.label)
          << "\",\n";
    if (!options.date.empty())
        entry << "  \"date\": \"" << jsonEscape(options.date)
              << "\",\n";
    entry << "  \"metrics\": {";
    // Select, then normalize: the normalized keys re-sort (and would
    // collide if two binaries exported the same benchmark — first
    // one wins, deterministically by source key order).
    std::map<std::string, double> kept;
    for (const auto &[metric, value] : metrics) {
        bool keep = false;
        for (const auto &sub : options.keepSubstrings) {
            if (!sub.empty() &&
                metric.find(sub) != std::string::npos) {
                keep = true;
                break;
            }
        }
        if (keep)
            kept.emplace(normalizeTrajectoryKey(metric), value);
    }
    bool first = true;
    for (const auto &[metric, value] : kept) {
        entry << (first ? "" : ",") << "\n   \""
              << jsonEscape(metric) << "\": " << formatNumber(value);
        first = false;
    }
    entry << (first ? "}" : "\n  }") << "\n }";

    // Splice into the existing array without a full parse: the file
    // is only ever written by this function, so the closing ']' as
    // the last non-whitespace byte is a structural invariant.
    std::string existing;
    {
        std::ifstream is(trajectory_path);
        if (is) {
            std::ostringstream ss;
            ss << is.rdbuf();
            existing = ss.str();
        }
    }
    std::string body;
    std::size_t end = existing.find_last_not_of(" \t\r\n");
    if (end == std::string::npos) {
        body = "[\n" + entry.str() + "\n]\n";
    } else {
        if (existing[end] != ']') {
            error = trajectory_path +
                    ": not a JSON array (refusing to append)";
            return false;
        }
        std::string head = existing.substr(0, end);
        // Empty array vs one with entries: comma only for the latter.
        std::size_t last = head.find_last_not_of(" \t\r\n");
        bool empty =
            last == std::string::npos || head[last] == '[';
        body = head + (empty ? "\n" : ",\n") + entry.str() + "\n]\n";
    }
    std::ofstream os(trajectory_path, std::ios::trunc);
    if (!os) {
        error = "cannot write " + trajectory_path;
        return false;
    }
    os << body;
    if (!os) {
        error = "write to " + trajectory_path + " failed";
        return false;
    }
    return true;
}

void
printDiffReport(std::ostream &os, const DiffResult &result,
                const DiffOptions &options)
{
    constexpr std::size_t kMaxListed = 20;
    os << "compared " << result.compared << " metrics (threshold "
       << options.threshold * 100.0 << "%, ignored "
       << result.ignored << ")\n";

    auto print_list = [&os, kMaxListed](const char *label,
                            const std::vector<MetricDelta> &list) {
        os << label << ": " << list.size() << "\n";
        std::size_t shown = std::min(list.size(), kMaxListed);
        for (std::size_t i = 0; i < shown; ++i) {
            const auto &d = list[i];
            os << "  " << d.metric << ": " << d.before << " -> "
               << d.after;
            if (std::isfinite(d.ratio)) {
                auto prec = os.precision();
                os << " (" << std::showpos << std::fixed
                   << std::setprecision(1) << (d.ratio - 1.0) * 100.0
                   << "%)" << std::noshowpos << std::defaultfloat
                   << std::setprecision(prec);
            } else {
                os << " (was zero)";
            }
            os << "\n";
        }
        if (list.size() > shown) {
            os << "  ... " << list.size() - shown << " more\n";
        }
    };
    print_list("regressions", result.regressions);
    print_list("improvements", result.improvements);
    if (!result.onlyBefore.empty()) {
        os << "metrics only in baseline: " << result.onlyBefore.size()
           << "\n";
    }
    if (!result.onlyAfter.empty()) {
        os << "metrics only in current: " << result.onlyAfter.size()
           << "\n";
    }
}

} // namespace cwsp::obs
