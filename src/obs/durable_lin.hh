/**
 * @file
 * Durable-linearizability checking for the concurrent workloads
 * (src/workloads/concurrent.hh) under crash campaigns.
 *
 * After a crash + recovery, the recovered NVM image must correspond
 * to some *consistent cut* of the pre-crash operation history: a
 * per-worker prefix P of the invoked operations such that
 *
 *  - every op whose response record survived in the durable image is
 *    in P (a durably-acknowledged op cannot be lost),
 *  - no op outside the committed pre-crash history is in P (nothing
 *    unstarted appears),
 *  - some interleaving of P (respecting per-worker program order)
 *    drives the abstract model — sequential stack / queue / map —
 *    to exactly the structure state decoded from the durable image,
 *    reproducing every recorded return value along the way.
 *
 * Classification reads the *image*, not persist timestamps: for
 * undo-logged schemes a speculatively admitted store can be reverted
 * by recovery, so WPQ admission does not imply survival — the image
 * recovery actually reconstructed is the ground truth.
 *
 * The search is a memoized DFS over per-worker cutoffs and
 * interleavings; histories are campaign-sized (tens of ops), so the
 * state space stays tiny.
 */

#ifndef CWSP_OBS_DURABLE_LIN_HH
#define CWSP_OBS_DURABLE_LIN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/scheme.hh"
#include "interp/machine_state.hh"
#include "workloads/concurrent.hh"

namespace cwsp::obs {

/** Verdict of one crash's durable-linearizability check. */
enum class DlOutcome : std::uint8_t {
    Pass,      ///< a witnessing linearization of some cut exists
    Violation, ///< no cut of the pre-crash history explains the image
    Vacuous,   ///< nothing to check (full restart / empty image)
};

const char *dlOutcomeName(DlOutcome outcome);

/** Result of checking one crash. */
struct DlResult
{
    DlOutcome outcome = DlOutcome::Vacuous;
    std::string reason;             ///< human-readable verdict detail
    std::uint32_t invokedOps = 0;   ///< ops with a committed inv record
    std::uint32_t completedOps = 0; ///< ops durably acknowledged
    std::uint64_t statesExplored = 0;
};

/**
 * Check one crash of a concurrent workload.
 *
 * @param spec         structure/history layout (workloads::concurrentSpec)
 * @param workerOps    per-worker op sequences (workloads::concurrentOps)
 * @param stores       the pre-crash recording bundle's store log
 *                     (commit order; CrashRunResult::firstStores)
 * @param image        the durable NVM image recovery reconstructed
 *                     (CrashRunResult::firstDurableImage)
 * @param fullRestart  recovery degraded to a full restart: the empty
 *                     image is trivially consistent -> Vacuous
 */
DlResult checkDurableLinearizability(
    const workloads::ConcurrentSpec &spec,
    const std::vector<std::vector<workloads::ConcurrentOp>> &workerOps,
    const std::vector<arch::StoreRecord> &stores,
    const interp::SparseMemory &image, bool fullRestart);

} // namespace cwsp::obs

#endif // CWSP_OBS_DURABLE_LIN_HH
