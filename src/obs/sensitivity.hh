/**
 * @file
 * Finite-difference knob sensitivity. For every runtime sizing knob
 * (PB/RBT/WPQ/WB capacities, persist-path bandwidth and latency, the
 * undo-log service factor, plus scheme-specific knobs), perturb the
 * default configuration geometrically (x0.5 and x2), re-simulate
 * through the batch engine, and score the knob by the relative cycle
 * span it induces:
 *
 *     span(app)  = (max - min over {lo, default, hi} cycles) /
 *                  default cycles
 *     score      = mean span over the profiled apps
 *
 * Knobs are ranked by descending score (ties: knob name ascending).
 * Because BatchRunner results are bit-identical for any jobs count,
 * the ranking is deterministic across --jobs values. Compiler knobs
 * are out of scope: they change the binary, not just the machine, so
 * a cycle delta would conflate code generation with sizing.
 */

#ifndef CWSP_OBS_SENSITIVITY_HH
#define CWSP_OBS_SENSITIVITY_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "driver/batch_runner.hh"
#include "workloads/workload.hh"

namespace cwsp::obs {

/** One knob's finite-difference result for one scheme. */
struct KnobSensitivity
{
    std::string knob;
    double loValue = 0.0;
    double defaultValue = 0.0;
    double hiValue = 0.0;
    /** Gmean cycles vs. the unpersisted baseline at each setting. */
    double loSlowdown = 0.0;
    double defaultSlowdown = 0.0;
    double hiSlowdown = 0.0;
    /** Mean relative cycle span over apps; the ranking key. */
    double score = 0.0;
    int rank = 0; ///< 1 = most sensitive
};

/** Ranked table for one scheme. */
struct SensitivityReport
{
    std::string scheme;
    std::vector<KnobSensitivity> knobs; ///< rank order
};

struct SensitivityOptions
{
    std::uint64_t maxInstrs = 2'000'000'000;
};

/**
 * Run the finite-difference pass for each non-baseline scheme in
 * @p schemes over @p apps. All design points go through @p runner in
 * one batch (parallel, result-cached). The baseline scheme is
 * skipped: it has no persistence knobs to perturb.
 */
std::vector<SensitivityReport>
runSensitivity(driver::BatchRunner &runner,
               const std::vector<std::string> &schemes,
               const std::vector<workloads::AppProfile> &apps,
               const SensitivityOptions &options = {});

/** JSON array (no trailing newline); embedded by the what-if writer. */
void writeSensitivityJson(std::ostream &os,
                          const std::vector<SensitivityReport> &reports,
                          const std::string &indent);

/** Markdown ranking tables, one per scheme. */
void
writeSensitivityMarkdown(std::ostream &os,
                         const std::vector<SensitivityReport> &reports);

} // namespace cwsp::obs

#endif // CWSP_OBS_SENSITIVITY_HH
