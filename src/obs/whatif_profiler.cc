#include "obs/whatif_profiler.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/config.hh"
#include "core/whole_system_sim.hh"
#include "obs/stall_attribution.hh"

namespace cwsp::obs {

namespace {

constexpr const char *kResourceNames[kNumIdealResources] = {
    "persist_buffer", "wpq", "rbt", "persist_path", "undo_log",
    "region_boundary",
};

constexpr const char *kResourceShort[kNumIdealResources] = {
    "pb", "wpq", "rbt", "path", "log", "bnd",
};

/** Disagreements below this floor are noise, never warned about. */
constexpr std::int64_t kAgreementFloor = 1000;

/** Order-of-magnitude agreement window for the cross-check. */
constexpr std::int64_t kAgreementFactor = 8;

double
gmeanRatio(const std::vector<double> &ratios)
{
    if (ratios.empty())
        return 1.0;
    double logsum = 0.0;
    for (double r : ratios)
        logsum += std::log(r);
    return std::exp(logsum / static_cast<double>(ratios.size()));
}

} // namespace

const char *
idealResourceName(IdealResource r)
{
    return kResourceNames[static_cast<std::size_t>(r)];
}

int
idealResourceStallCause(IdealResource r)
{
    switch (r) {
      case IdealResource::PersistBuffer:
        return static_cast<int>(sim::StallCause::PbFull);
      case IdealResource::Wpq:
        return static_cast<int>(sim::StallCause::WpqFull);
      case IdealResource::Rbt:
        return static_cast<int>(sim::StallCause::RbtFull);
      case IdealResource::PersistPath:
        return static_cast<int>(sim::StallCause::PathBandwidth);
      case IdealResource::UndoLog:
        return static_cast<int>(sim::StallCause::McUndoLog);
      case IdealResource::RegionBoundary:
        return -1;
    }
    return -1;
}

core::SystemConfig
idealizedConfig(const core::SystemConfig &cfg, IdealResource r)
{
    core::SystemConfig out = cfg;
    switch (r) {
      case IdealResource::PersistBuffer:
        out.scheme.ideal.infinitePb = true;
        break;
      case IdealResource::Wpq:
        out.hierarchy.idealWpq = true;
        break;
      case IdealResource::Rbt:
        out.scheme.ideal.unboundedRbt = true;
        break;
      case IdealResource::PersistPath:
        // An ideal path also removes Capri's worst-case delivery
        // wait on DRAM-cache evictions: that delay *is* path
        // latency charged to the stale-read scan.
        out.scheme.path.ideal = true;
        out.hierarchy.dramEvictionDelay = 0;
        break;
      case IdealResource::UndoLog:
        out.hierarchy.freeUndoLog = true;
        break;
      case IdealResource::RegionBoundary:
        out.scheme.ideal.freeBoundary = true;
        break;
    }
    return out;
}

WhatIfReport
runWhatIf(driver::BatchRunner &runner,
          const std::vector<std::string> &schemes,
          const std::vector<workloads::AppProfile> &apps,
          const WhatIfOptions &options)
{
    const core::SystemConfig baseCfg =
        core::makeSystemConfig("baseline");
    constexpr std::size_t kInvalid = ~static_cast<std::size_t>(0);

    // One flat batch: baseline + real + one point per resource for
    // every non-baseline (scheme, app). Identical points (the shared
    // baseline) dedupe inside the runner.
    std::vector<driver::DesignPoint> points;
    auto add = [&](const core::SystemConfig &cfg,
                   const workloads::AppProfile &app) {
        driver::DesignPoint p;
        p.app = app;
        p.config = cfg;
        p.maxInstrs = options.maxInstrs;
        points.push_back(p);
        return points.size() - 1;
    };

    struct Slot
    {
        std::size_t base = 0;
        std::size_t real = 0;
        std::size_t ideal[kNumIdealResources] = {};
    };
    std::vector<Slot> slots;
    std::vector<std::pair<std::string, const workloads::AppProfile *>>
        pairs;
    for (const std::string &scheme : schemes) {
        const core::SystemConfig realCfg =
            core::makeSystemConfig(scheme);
        for (const auto &app : apps) {
            Slot s;
            s.base = add(baseCfg, app);
            if (scheme == "baseline") {
                s.real = s.base;
                for (auto &i : s.ideal)
                    i = kInvalid;
            } else {
                s.real = add(realCfg, app);
                for (std::size_t r = 0; r < kNumIdealResources; ++r) {
                    s.ideal[r] =
                        add(idealizedConfig(
                                realCfg,
                                static_cast<IdealResource>(r)),
                            app);
                }
            }
            slots.push_back(s);
            pairs.emplace_back(scheme, &app);
        }
    }

    const std::vector<core::RunResult> results = runner.runAll(points);

    WhatIfReport report;
    report.entries.resize(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
        const Slot &s = slots[i];
        WhatIfEntry &e = report.entries[i];
        e.scheme = pairs[i].first;
        e.app = pairs[i].second->name;
        e.baselineCycles = results[s.base].cycles;
        e.realCycles = results[s.real].cycles;
        e.overhead = static_cast<std::int64_t>(e.realCycles) -
                     static_cast<std::int64_t>(e.baselineCycles);
        std::int64_t sum = 0;
        for (std::size_t r = 0; r < kNumIdealResources; ++r) {
            if (s.ideal[r] == kInvalid) {
                e.idealCycles[r] = e.realCycles;
                e.saved[r] = 0;
            } else {
                e.idealCycles[r] = results[s.ideal[r]].cycles;
                e.saved[r] =
                    static_cast<std::int64_t>(e.realCycles) -
                    static_cast<std::int64_t>(e.idealCycles[r]);
            }
            sum += e.saved[r];
            if (e.saved[r] > e.topSaved ||
                (r == 0 && e.topSaved == 0)) {
                e.topSaved = e.saved[r];
                e.topBottleneck = static_cast<IdealResource>(r);
            }
        }
        e.residual = e.overhead - sum;
    }

    // Cross-check: re-run each non-baseline real point with a trace
    // attached and compare the waterfall against stall attribution.
    if (options.crossCheck) {
        std::vector<std::function<void()>> tasks;
        for (std::size_t i = 0; i < report.entries.size(); ++i) {
            if (report.entries[i].scheme == "baseline")
                continue;
            tasks.push_back([&, i] {
                WhatIfEntry &e = report.entries[i];
                const core::SystemConfig cfg =
                    core::makeSystemConfig(e.scheme);
                auto mod =
                    runner.moduleFor(*pairs[i].second, cfg.compiler);
                core::WholeSystemSim sim(*mod, cfg);
                sim::TraceBuffer trace(options.traceCap,
                                       sim::kTraceAll);
                sim.attachTrace(&trace);
                auto traced =
                    sim.run("main", {}, options.maxInstrs);
                StallAttribution attr =
                    attributeStalls(trace.snapshot());
                e.crossChecked = true;
                e.totalStallCycles = attr.totalStallCycles;
                for (std::size_t c = 0; c < sim::kNumStallCauses;
                     ++c)
                    e.stallCycles[c] = attr.cycles[c];

                char buf[256];
                if (traced.cycles != e.realCycles) {
                    std::snprintf(
                        buf, sizeof(buf),
                        "traced cross-check run took %llu cycles "
                        "but the batch result is %llu",
                        (unsigned long long)traced.cycles,
                        (unsigned long long)e.realCycles);
                    e.warnings.push_back(buf);
                }
                if (e.overhead <= 0)
                    return;
                std::int64_t floor = std::max(
                    e.overhead / 20, kAgreementFloor);
                for (std::size_t r = 0; r < kNumIdealResources;
                     ++r) {
                    int cause = idealResourceStallCause(
                        static_cast<IdealResource>(r));
                    if (cause < 0)
                        continue;
                    std::int64_t rec = std::max(
                        e.saved[r], static_cast<std::int64_t>(0));
                    std::int64_t stall =
                        static_cast<std::int64_t>(
                            attr.cycles[static_cast<std::size_t>(
                                cause)]);
                    if (rec > floor &&
                        stall * kAgreementFactor < rec) {
                        std::snprintf(
                            buf, sizeof(buf),
                            "idealizing %s recovers %lld cycles "
                            "but stall attribution charges only "
                            "%lld to %s",
                            kResourceNames[r], (long long)rec,
                            (long long)stall,
                            sim::stallCauseName(
                                static_cast<sim::StallCause>(
                                    cause)));
                        e.warnings.push_back(buf);
                    } else if (stall > floor &&
                               rec * kAgreementFactor < stall) {
                        std::snprintf(
                            buf, sizeof(buf),
                            "stall attribution charges %lld "
                            "cycles to %s but idealizing %s "
                            "recovers only %lld (overlapped or "
                            "secondary bottleneck)",
                            (long long)stall,
                            sim::stallCauseName(
                                static_cast<sim::StallCause>(
                                    cause)),
                            kResourceNames[r], (long long)rec);
                        e.warnings.push_back(buf);
                    }
                }
            });
        }
        runner.runTasks(tasks);
    }

    // Per-scheme aggregates.
    for (const std::string &scheme : schemes) {
        WhatIfSchemeSummary sum;
        sum.scheme = scheme;
        std::vector<double> ratios;
        for (const WhatIfEntry &e : report.entries) {
            if (e.scheme != scheme)
                continue;
            sum.overheadTotal += e.overhead;
            sum.residualTotal += e.residual;
            for (std::size_t r = 0; r < kNumIdealResources; ++r)
                sum.savedTotal[r] += e.saved[r];
            sum.warningCount += e.warnings.size();
            if (e.baselineCycles > 0) {
                ratios.push_back(
                    static_cast<double>(e.realCycles) /
                    static_cast<double>(e.baselineCycles));
            }
        }
        sum.overheadGmean = gmeanRatio(ratios);
        for (std::size_t r = 0; r < kNumIdealResources; ++r) {
            if (sum.savedTotal[r] > sum.topSaved) {
                sum.topSaved = sum.savedTotal[r];
                sum.topBottleneck = static_cast<IdealResource>(r);
            }
        }
        report.schemes.push_back(std::move(sum));
    }

    report.batch = runner.stats();
    return report;
}

void
writeWhatIfMarkdown(std::ostream &os, const WhatIfReport &report,
                    const std::vector<SensitivityReport> *sensitivity)
{
    os << "# What-if counterfactual profile\n\n"
       << "Per-resource overhead waterfalls: each column is the "
          "cycles recovered by\nidealizing that one resource "
          "(infinite PB, never-full WPQ, unbounded RBT,\nzero-"
          "latency/infinite-bandwidth persist path, free undo "
          "logging, free region\nboundaries). `residual` is the "
          "interaction term; columns + residual equal the\nmeasured "
          "overhead vs. the unpersisted baseline exactly, in "
          "ticks.\n";

    std::vector<std::string> schemeOrder;
    for (const auto &s : report.schemes)
        schemeOrder.push_back(s.scheme);

    for (const std::string &scheme : schemeOrder) {
        os << "\n## " << scheme << "\n\n| app | baseline | real | "
           << "overhead |";
        for (std::size_t r = 0; r < kNumIdealResources; ++r)
            os << ' ' << kResourceShort[r] << " |";
        os << " residual | top |\n|-----|---------:|-----:|"
           << "---------:|";
        for (std::size_t r = 0; r < kNumIdealResources; ++r)
            os << "----:|";
        os << "---------:|-----|\n";
        for (const WhatIfEntry &e : report.entries) {
            if (e.scheme != scheme)
                continue;
            os << "| " << e.app << " | " << e.baselineCycles
               << " | " << e.realCycles << " | " << e.overhead
               << " |";
            for (std::size_t r = 0; r < kNumIdealResources; ++r)
                os << ' ' << e.saved[r] << " |";
            os << ' ' << e.residual << " | "
               << (e.topSaved > 0
                       ? kResourceShort[static_cast<std::size_t>(
                             e.topBottleneck)]
                       : "-")
               << " |\n";
        }
    }

    os << "\n## Scheme summary\n\n"
       << "| scheme | overhead gmean | overhead total | top "
          "bottleneck | saved @ top | residual total | warnings |\n"
       << "|--------|---------------:|---------------:|------------"
          "----|------------:|---------------:|---------:|\n";
    for (const WhatIfSchemeSummary &s : report.schemes) {
        char gm[32];
        std::snprintf(gm, sizeof(gm), "%.4f", s.overheadGmean);
        os << "| " << s.scheme << " | " << gm << " | "
           << s.overheadTotal << " | "
           << (s.topSaved > 0
                   ? idealResourceName(s.topBottleneck)
                   : "-")
           << " | " << s.topSaved << " | " << s.residualTotal
           << " | " << s.warningCount << " |\n";
    }

    bool anyWarnings = false;
    for (const WhatIfEntry &e : report.entries)
        anyWarnings = anyWarnings || !e.warnings.empty();
    if (anyWarnings) {
        os << "\n## Cross-check warnings\n\n";
        for (const WhatIfEntry &e : report.entries)
            for (const std::string &w : e.warnings)
                os << "- `" << e.scheme << "/" << e.app << "`: " << w
                   << "\n";
    }

    if (sensitivity && !sensitivity->empty()) {
        os << "\n";
        writeSensitivityMarkdown(os, *sensitivity);
    }
}

void
writeWhatIfJson(std::ostream &os, const WhatIfReport &report,
                const std::vector<SensitivityReport> *sensitivity)
{
    os << "{\n  \"whatif\": {\n    \"points\": [";
    for (std::size_t i = 0; i < report.entries.size(); ++i) {
        const WhatIfEntry &e = report.entries[i];
        os << (i ? ",\n      " : "\n      ");
        os << "{\"scheme\": \"" << e.scheme << "\", \"app\": \""
           << e.app << "\", \"baseline_cycles\": " << e.baselineCycles
           << ", \"real_cycles\": " << e.realCycles
           << ", \"overhead_cycles\": " << e.overhead
           << ", \"saved\": {";
        for (std::size_t r = 0; r < kNumIdealResources; ++r) {
            os << (r ? ", " : "") << "\"" << kResourceNames[r]
               << "\": " << e.saved[r];
        }
        os << "}, \"ideal_cycles\": {";
        for (std::size_t r = 0; r < kNumIdealResources; ++r) {
            os << (r ? ", " : "") << "\"" << kResourceNames[r]
               << "\": " << e.idealCycles[r];
        }
        os << "}, \"residual_cycles\": " << e.residual
           << ", \"top_bottleneck\": \""
           << (e.topSaved > 0 ? idealResourceName(e.topBottleneck)
                              : "none")
           << "\", \"top_saved_cycles\": " << e.topSaved;
        if (e.crossChecked) {
            os << ", \"stalls\": {";
            for (std::size_t c = 0; c < sim::kNumStallCauses; ++c) {
                os << (c ? ", " : "") << "\""
                   << sim::stallCauseName(
                          static_cast<sim::StallCause>(c))
                   << "\": " << e.stallCycles[c];
            }
            os << ", \"total\": " << e.totalStallCycles << "}";
        }
        os << ", \"warnings\": [";
        for (std::size_t w = 0; w < e.warnings.size(); ++w)
            os << (w ? ", " : "") << "\"" << e.warnings[w] << "\"";
        os << "]}";
    }
    os << (report.entries.empty() ? "]" : "\n    ]")
       << ",\n    \"scheme_summary\": [";
    for (std::size_t i = 0; i < report.schemes.size(); ++i) {
        const WhatIfSchemeSummary &s = report.schemes[i];
        char gm[32];
        std::snprintf(gm, sizeof(gm), "%.6g", s.overheadGmean);
        os << (i ? ",\n      " : "\n      ");
        os << "{\"name\": \"" << s.scheme
           << "\", \"overhead_total\": " << s.overheadTotal
           << ", \"overhead_gmean\": " << gm << ", \"saved_total\": {";
        for (std::size_t r = 0; r < kNumIdealResources; ++r) {
            os << (r ? ", " : "") << "\"" << kResourceNames[r]
               << "\": " << s.savedTotal[r];
        }
        os << "}, \"residual_total\": " << s.residualTotal
           << ", \"top_bottleneck\": \""
           << (s.topSaved > 0 ? idealResourceName(s.topBottleneck)
                              : "none")
           << "\", \"top_saved_cycles\": " << s.topSaved
           << ", \"warning_count\": " << s.warningCount << "}";
    }
    os << (report.schemes.empty() ? "]" : "\n    ]")
       << ",\n    \"batch\": {\"simulated\": " << report.batch.simulated
       << ", \"memory_hits\": " << report.batch.memoryHits
       << ", \"disk_hits\": " << report.batch.diskHits
       << ", \"replayed_runs\": " << report.batch.replayedRuns
       << "}\n  }";
    if (sensitivity) {
        os << ",\n  \"sensitivity\": ";
        writeSensitivityJson(os, *sensitivity, "  ");
    }
    os << "\n}\n";
}

} // namespace cwsp::obs
