/**
 * @file
 * Online protocol checking: a TraceSink that validates persistence
 * invariants as events arrive, so violations surface the moment a
 * simulation (or a hand-corrupted stream) breaks protocol, with the
 * event window that led up to it. Checks:
 *
 *  1. in-order region lifecycle: RegionBegin ids increase globally
 *     (shared hardware counter, Fig. 9) and RbtRetire ids increase
 *     per lane (FIFO RBT);
 *  2. undo-log coverage: every WPQ admission flagged as speculative
 *     is immediately preceded on its MC lane by the matching
 *     UndoAppend (log-before-accept), and no append is orphaned;
 *  3. WPQ occupancy never exceeds the ADR-backed capacity;
 *  4. after a crash, no persist-side activity (PB/path/WPQ/undo
 *     append) until the recovery slice replays (UndoRollback is the
 *     recovery log replay itself and is allowed).
 *
 * Attach with WholeSystemSim::attachTraceSink (or feed a snapshot
 * offline). The producing buffer must trace with mask kTraceAll:
 * the undo-coverage check pairs events across the wpq and mc
 * categories, so masking either off would fabricate violations.
 */

#ifndef CWSP_OBS_INVARIANT_MONITOR_HH
#define CWSP_OBS_INVARIANT_MONITOR_HH

#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/trace.hh"
#include "sim/types.hh"

namespace cwsp::obs {

/** One detected protocol violation plus its trailing event window. */
struct InvariantViolation
{
    std::string invariant; ///< short id, e.g. "undo-coverage"
    std::string detail;
    std::uint64_t eventIndex = 0; ///< offending event's stream index
    std::vector<sim::TraceEvent> window; ///< events up to and
                                         ///< including the offender
};

/** Tuning knobs for one monitor instance. */
struct InvariantMonitorConfig
{
    std::uint32_t wpqCapacity = 24; ///< ADR domain size per MC
    std::size_t windowSize = 8;     ///< events kept per violation
    std::size_t maxViolations = 64; ///< reporting cap (counting
                                    ///< continues past it)
};

class InvariantMonitor final : public sim::TraceSink
{
  public:
    explicit InvariantMonitor(const InvariantMonitorConfig &config =
                                  InvariantMonitorConfig{});

    void onTraceEvent(const sim::TraceEvent &event) override;

    /**
     * End-of-stream checks (an UndoAppend with no admission is only
     * detectable once the stream ends). Idempotent.
     */
    void finish();

    std::uint64_t eventsChecked() const { return eventsChecked_; }
    std::uint64_t violationCount() const { return violationCount_; }
    bool clean() const { return violationCount_ == 0; }
    const std::vector<InvariantViolation> &violations() const
    {
        return violations_;
    }

    /** Reset all stream state for a fresh run. */
    void reset();

  private:
    struct McState
    {
        std::deque<Tick> drains; ///< in-flight WPQ entry drain times
        bool pendingUndo = false;
        Tick pendingUndoTick = 0;
        std::uint64_t pendingUndoAddr = 0;
    };

    struct LaneState
    {
        bool hasRetired = false;
        RegionId lastRetired = 0;
    };

    InvariantMonitorConfig config_;
    std::map<std::uint16_t, McState> mcs_;
    std::map<std::uint16_t, LaneState> lanes_;
    bool hasBegunRegion_ = false;
    RegionId lastBegunRegion_ = 0;
    bool crashed_ = false;
    bool recovered_ = false;
    std::uint64_t eventsChecked_ = 0;
    std::uint64_t violationCount_ = 0;
    std::vector<InvariantViolation> violations_;
    std::deque<sim::TraceEvent> window_;

    void report(const std::string &invariant, std::string detail);
};

/** Human-readable violation report (event windows included). */
void printViolations(std::ostream &os,
                     const std::vector<InvariantViolation> &violations);

/** Offline convenience: run a snapshot through a fresh monitor. */
std::vector<InvariantViolation>
checkInvariants(const std::vector<sim::TraceEvent> &events,
                const InvariantMonitorConfig &config =
                    InvariantMonitorConfig{});

} // namespace cwsp::obs

#endif // CWSP_OBS_INVARIANT_MONITOR_HH
