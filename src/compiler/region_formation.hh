/**
 * @file
 * Idempotent region formation (Section IV-A): seeds boundaries at the
 * function entry, loop headers, call sites, and synchronization
 * points, then cuts every remaining memory/register antidependence so
 * each region can be re-executed after power failure.
 */

#ifndef CWSP_COMPILER_REGION_FORMATION_HH
#define CWSP_COMPILER_REGION_FORMATION_HH

#include "compiler/compiler.hh"

namespace cwsp::compiler {

/**
 * Insert RegionBoundary instructions into @p func per @p options and
 * assign consecutive static region ids (stored in the boundary's imm
 * field). Recovery slices are sized but left empty; later passes fill
 * them.
 *
 * @param module needed for alias analysis over globals.
 * @return per-function statistics (boundary and cut counts).
 */
CompileStats formRegions(ir::Module &module, ir::Function &func,
                         const CompilerOptions &options);

} // namespace cwsp::compiler

#endif // CWSP_COMPILER_REGION_FORMATION_HH
