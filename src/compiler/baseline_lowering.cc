#include "compiler/baseline_lowering.hh"

namespace cwsp::compiler {

CompilerOptions
baselineOptions()
{
    CompilerOptions o;
    o.instrument = false;
    return o;
}

CompilerOptions
cwspOptions()
{
    return CompilerOptions{};
}

CompilerOptions
idoOptions()
{
    CompilerOptions o;
    o.pruneCheckpoints = false;
    return o;
}

CompilerOptions
capriOptions()
{
    CompilerOptions o;
    o.maxRegionInstrs = 29;
    o.insertCheckpoints = false;
    o.pruneCheckpoints = false;
    o.buildRecoverySlices = false;
    return o;
}

CompilerOptions
replayCacheOptions()
{
    CompilerOptions o;
    o.pruneCheckpoints = false;
    return o;
}

} // namespace cwsp::compiler
