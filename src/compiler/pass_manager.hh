/**
 * @file
 * Pipeline driver for the cWSP compiler passes.
 */

#ifndef CWSP_COMPILER_PASS_MANAGER_HH
#define CWSP_COMPILER_PASS_MANAGER_HH

#include "compiler/compiler.hh"

namespace cwsp::compiler {

/** Run the configured pipeline on a single function. */
CompileStats compileFunctionForWsp(ir::Module &module,
                                   ir::Function &func,
                                   const CompilerOptions &options);

} // namespace cwsp::compiler

#endif // CWSP_COMPILER_PASS_MANAGER_HH
