#include "compiler/checkpoint_pruning.hh"

#include <algorithm>
#include <map>
#include <optional>

#include "analysis/cfg.hh"
#include "analysis/liveness.hh"
#include "analysis/reaching_defs.hh"
#include "sim/logging.hh"

namespace cwsp::compiler {

namespace {

using analysis::Cfg;
using analysis::DefId;
using analysis::kNoDef;
using analysis::Liveness;
using analysis::ReachingDefs;
using analysis::RegMask;

struct Boundary
{
    ir::BlockId block;
    std::uint32_t index;
    ir::StaticRegionId id;
    RegMask live;
};

struct Ckpt
{
    ir::BlockId block;
    std::uint32_t index;
    ir::Reg reg;
    std::vector<DefId> valueDefs; ///< defs whose value this ckpt saves
    bool kept = true;
    bool pinned = false;
};

/** ALU transforms a rematerialization chain may apply. */
bool
chainableOp(ir::Opcode op)
{
    switch (op) {
      case ir::Opcode::Add:
      case ir::Opcode::Sub:
      case ir::Opcode::Mul:
      case ir::Opcode::And:
      case ir::Opcode::Or:
      case ir::Opcode::Xor:
      case ir::Opcode::Shl:
      case ir::Opcode::Shr:
        return true;
      default:
        return false;
    }
}

class Pruner
{
  public:
    explicit Pruner(ir::Function &func)
        : func_(func), cfg_(func), live_(cfg_), rd_(cfg_)
    {
        collect();
    }

    PruneResult run();

  private:
    ir::Function &func_;
    Cfg cfg_;
    Liveness live_;
    ReachingDefs rd_;
    std::vector<Boundary> boundaries_;
    std::vector<Ckpt> ckpts_;
    std::vector<std::vector<std::size_t>> ckptsOfReg_;
    /** Chains recorded so far (owned by run()); see slotValidAt. */
    const std::map<std::pair<ir::StaticRegionId, ir::Reg>,
                   RematPlan> *chains_ = nullptr;

    void collect();

    bool sameDefs(const std::vector<DefId> &a,
                  const std::vector<DefId> &b) const
    {
        return a == b; // both sorted by construction
    }

    static bool
    intersects(const std::vector<DefId> &a, const std::vector<DefId> &b)
    {
        auto ia = a.begin();
        auto ib = b.begin();
        while (ia != a.end() && ib != b.end()) {
            if (*ia < *ib)
                ++ia;
            else if (*ib < *ia)
                ++ib;
            else
                return true;
        }
        return false;
    }

    /** Boundaries a checkpoint may dynamically serve. */
    std::vector<std::size_t> served(const Ckpt &c) const;

    /**
     * Try to build a rematerialization chain for register @p r at
     * boundary @p b, assuming checkpoint @p candidate is pruned.
     * On success returns the chain and appends the checkpoint indices
     * it relies on to @p suppliers.
     */
    std::optional<RematPlan>
    tryChain(const Boundary &b, ir::Reg r, std::size_t candidate,
             std::vector<std::size_t> &suppliers) const;

    /**
     * Is register @p q's value at boundary @p b exactly the value of
     * definition @p dq, guaranteed present in slot[q] at recovery (a
     * kept canonical checkpoint follows dq)? On success appends the
     * checkpoints that must stay pinned to @p suppliers.
     */
    bool slotValidAt(const Boundary &b, ir::Reg q, DefId dq,
                     std::size_t candidate,
                     std::vector<std::size_t> &suppliers) const;
};

void
Pruner::collect()
{
    ckptsOfReg_.resize(ir::kNumRegs);
    for (std::size_t bb = 0; bb < func_.numBlocks(); ++bb) {
        auto bid = static_cast<ir::BlockId>(bb);
        const auto &instrs = func_.block(bid).instrs();
        for (std::uint32_t k = 0; k < instrs.size(); ++k) {
            const ir::Instr &i = instrs[k];
            if (i.op == ir::Opcode::RegionBoundary) {
                boundaries_.push_back(Boundary{
                    bid, k,
                    static_cast<ir::StaticRegionId>(i.imm),
                    live_.liveBefore(bid, k) &
                        ~analysis::regBit(kFramePointer)});
            } else if (i.op == ir::Opcode::Checkpoint) {
                Ckpt c;
                c.block = bid;
                c.index = k;
                c.reg = i.a;
                c.valueDefs = rd_.reachingAt(bid, k, i.a);
                ckptsOfReg_[i.a].push_back(ckpts_.size());
                ckpts_.push_back(std::move(c));
            }
        }
    }
}

std::vector<std::size_t>
Pruner::served(const Ckpt &c) const
{
    std::vector<std::size_t> result;
    for (std::size_t bi = 0; bi < boundaries_.size(); ++bi) {
        const Boundary &b = boundaries_[bi];
        if (!(b.live & analysis::regBit(c.reg)))
            continue;
        auto reach = rd_.reachingAt(b.block, b.index, c.reg);
        if (intersects(c.valueDefs, reach))
            result.push_back(bi);
    }
    return result;
}

bool
Pruner::slotValidAt(const Boundary &b, ir::Reg q, DefId dq,
                    std::size_t candidate,
                    std::vector<std::size_t> &suppliers) const
{
    if (rd_.isEntryDef(dq))
        return false;
    auto reach_q = rd_.reachingAt(b.block, b.index, q);
    if (reach_q.size() != 1 || reach_q[0] != dq ||
        !(b.live & analysis::regBit(q)))
        return false;
    ir::InstrRef dsite = rd_.defSite(dq);
    std::size_t canonical = ~std::size_t{0};
    for (std::size_t ci : ckptsOfReg_[q]) {
        const Ckpt &c = ckpts_[ci];
        if (ci == candidate || !c.kept)
            continue;
        if (c.block == dsite.block && c.index > dsite.index &&
            c.valueDefs.size() == 1 && c.valueDefs[0] == dq) {
            canonical = ci;
            break;
        }
    }
    if (canonical == ~std::size_t{0})
        return false;
    // The register q must be restored by a plain slot load at
    // recovery (chains read it as a register operand): reject when a
    // rematerialization chain was already recorded for (b, q) — and
    // the pinning below prevents any future one.
    if (chains_ && chains_->count(std::make_pair(b.id, q)))
        return false;
    // Pin every kept checkpoint of q serving this boundary: they
    // jointly maintain the slot invariant the chain reads through.
    for (std::size_t ci : ckptsOfReg_[q]) {
        const Ckpt &c = ckpts_[ci];
        if (ci != candidate && c.kept &&
            intersects(c.valueDefs, reach_q)) {
            suppliers.push_back(ci);
        }
    }
    return true;
}

std::optional<RematPlan>
Pruner::tryChain(const Boundary &b, ir::Reg r, std::size_t candidate,
                 std::vector<std::size_t> &suppliers) const
{
    auto reach_r = rd_.reachingAt(b.block, b.index, r);
    if (reach_r.size() != 1)
        return std::nullopt;

    constexpr int kMaxSteps = 6;
    std::vector<ir::RsOp> transforms; // collected in reverse order

    ir::Reg q = r;
    DefId dq = reach_r[0];
    for (int step = 0;; ++step) {
        if (step > kMaxSteps)
            return std::nullopt;

        // Slot termination (skipped at step 0 — that would just be
        // the checkpoint we are trying to prune): valid when q's value
        // at the boundary is exactly dq's value and the canonical
        // checkpoint following dq survives.
        if (step > 0 &&
            slotValidAt(b, q, dq, candidate, suppliers)) {
            RematPlan plan;
            ir::RsOp init;
            init.kind = ir::RsOp::Kind::LoadSlot;
            init.dst = r;
            init.slot = q;
            plan.ops.push_back(init);
            for (auto it = transforms.rbegin();
                 it != transforms.rend(); ++it)
                plan.ops.push_back(*it);
            return plan;
        }

        if (rd_.isEntryDef(dq)) {
            // Parameter values are spilled into their slots by the
            // call sequence, so an unmodified parameter reads its
            // slot directly.
            auto reach_q = rd_.reachingAt(b.block, b.index, q);
            if (q < func_.numParams() && reach_q.size() == 1 &&
                reach_q[0] == dq) {
                RematPlan plan;
                ir::RsOp init;
                init.kind = ir::RsOp::Kind::LoadSlot;
                init.dst = r;
                init.slot = q;
                plan.ops.push_back(init);
                for (auto it = transforms.rbegin();
                     it != transforms.rend(); ++it)
                    plan.ops.push_back(*it);
                return plan;
            }
            return std::nullopt;
        }

        ir::InstrRef site = rd_.defSite(dq);
        const ir::Instr &inst =
            func_.block(site.block).instrs()[site.index];

        if (inst.op == ir::Opcode::MovImm) {
            RematPlan plan;
            ir::RsOp init;
            init.kind = ir::RsOp::Kind::SetImm;
            init.dst = r;
            init.imm = inst.imm;
            plan.ops.push_back(init);
            for (auto it = transforms.rbegin(); it != transforms.rend();
                 ++it)
                plan.ops.push_back(*it);
            return plan;
        }
        if (inst.op == ir::Opcode::Mov) {
            q = inst.a;
        } else if (chainableOp(inst.op) && inst.bIsImm) {
            ir::RsOp t;
            t.kind = ir::RsOp::Kind::Apply;
            t.op = inst.op;
            t.dst = r;
            t.srcA = r;
            t.bIsImm = true;
            t.imm = inst.imm;
            transforms.push_back(t);
            q = inst.a;
        } else if (chainableOp(inst.op) && !inst.bIsImm) {
            // Two-register form (base+index addressing): the second
            // operand must be restorable from its own slot at this
            // boundary; the recovery slice reads the *register* after
            // the slot-restored live-ins run (buildRecoverySlices
            // emits slot restores before chains).
            DefId dq2 = rd_.uniqueReachingAt(site.block, site.index,
                                             inst.b);
            if (dq2 == kNoDef ||
                !slotValidAt(b, inst.b, dq2, candidate, suppliers))
                return std::nullopt;
            ir::RsOp t;
            t.kind = ir::RsOp::Kind::Apply;
            t.op = inst.op;
            t.dst = r;
            t.srcA = r;
            t.srcB = inst.b;
            t.bIsImm = false;
            transforms.push_back(t);
            q = inst.a;
        } else {
            return std::nullopt;
        }
        auto next = rd_.reachingAt(site.block, site.index, q);
        if (next.size() != 1)
            return std::nullopt;
        dq = next[0];
    }
}

PruneResult
Pruner::run()
{
    PruneResult result;
    chains_ = &result.chains;

    // Greedy pass in reverse program order: loop-body checkpoints
    // (the hot ones) are attempted first.
    std::vector<std::size_t> order(ckpts_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = ckpts_.size() - 1 - i;

    for (std::size_t ci : order) {
        Ckpt &c = ckpts_[ci];
        if (c.pinned)
            continue;

        auto served_boundaries = served(c);
        std::vector<
            std::pair<std::pair<ir::StaticRegionId, ir::Reg>, RematPlan>>
            plans;
        std::vector<std::size_t> suppliers;
        bool ok = true;
        for (std::size_t bi : served_boundaries) {
            const Boundary &b = boundaries_[bi];
            auto key = std::make_pair(b.id, c.reg);
            // A chain recorded by an earlier pruning of a sibling
            // checkpoint already covers this pair.
            if (result.chains.count(key))
                continue;
            auto plan = tryChain(b, c.reg, ci, suppliers);
            if (!plan) {
                ok = false;
                break;
            }
            plans.emplace_back(key, std::move(*plan));
        }
        if (!ok)
            continue;

        c.kept = false;
        ++result.pruned;
        for (auto &[key, plan] : plans)
            result.chains[key] = std::move(plan);
        for (std::size_t si : suppliers)
            ckpts_[si].pinned = true;
    }

    // Delete pruned checkpoint instructions, back to front per block.
    std::vector<std::size_t> doomed;
    for (std::size_t ci = 0; ci < ckpts_.size(); ++ci) {
        if (!ckpts_[ci].kept)
            doomed.push_back(ci);
    }
    std::sort(doomed.begin(), doomed.end(),
              [this](std::size_t x, std::size_t y) {
                  const Ckpt &a = ckpts_[x];
                  const Ckpt &b = ckpts_[y];
                  return a.block != b.block ? a.block > b.block
                                            : a.index > b.index;
              });
    for (std::size_t ci : doomed) {
        const Ckpt &c = ckpts_[ci];
        auto &instrs = func_.block(c.block).instrs();
        cwsp_assert(instrs[c.index].op == ir::Opcode::Checkpoint &&
                        instrs[c.index].a == c.reg,
                    "pruning bookkeeping out of sync");
        instrs.erase(instrs.begin() + c.index);
    }
    return result;
}

} // namespace

PruneResult
pruneCheckpoints(ir::Function &func)
{
    return Pruner(func).run();
}

} // namespace cwsp::compiler
