/**
 * @file
 * Checkpoint pruning (Section IV-C). Many checkpoints are redundant:
 * the saved value can be rebuilt at recovery time from immediates
 * and/or other (surviving) checkpoints. This pass removes such
 * checkpoints and records, per (region, register), the
 * rematerialization chain the recovery slice must run instead.
 *
 * The paper uses Penny's optimal pruning; we implement a greedy,
 * pin-based approximation with the same structure: a checkpoint is
 * pruned only when every region boundary it may serve gets a valid
 * rematerialization chain, and every checkpoint a chain relies on is
 * pinned against later pruning. Chains are linear: they start from an
 * immediate or a surviving checkpoint slot and apply immediate-operand
 * ALU transforms, which covers the paper's motivating patterns
 * (constants, copies, pointer+offset recomputation, Fig. 4's
 * load-then-shift slice).
 */

#ifndef CWSP_COMPILER_CHECKPOINT_PRUNING_HH
#define CWSP_COMPILER_CHECKPOINT_PRUNING_HH

#include <map>
#include <utility>
#include <vector>

#include "compiler/compiler.hh"

namespace cwsp::compiler {

/** Rematerialization chain for one (region, register) pair. */
struct RematPlan
{
    std::vector<ir::RsOp> ops;
};

/** Output of the pruning pass, consumed by recovery-slice synthesis. */
struct PruneResult
{
    /**
     * Chains for live-in registers whose value is rebuilt rather than
     * loaded from its own slot. Absent entries mean "load the slot".
     */
    std::map<std::pair<ir::StaticRegionId, ir::Reg>, RematPlan> chains;

    std::uint64_t pruned = 0; ///< checkpoints removed
};

/**
 * Prune redundant checkpoints in @p func (mutates the IR by deleting
 * Checkpoint instructions) and return the rematerialization chains.
 * Requires boundaries and checkpoints to be present.
 */
PruneResult pruneCheckpoints(ir::Function &func);

} // namespace cwsp::compiler

#endif // CWSP_COMPILER_CHECKPOINT_PRUNING_HH
