#include "compiler/pass_manager.hh"

#include "compiler/checkpoint_insertion.hh"
#include "compiler/checkpoint_pruning.hh"
#include "compiler/recovery_slice.hh"
#include "compiler/region_formation.hh"
#include "ir/verifier.hh"
#include "sim/logging.hh"

namespace cwsp::compiler {

CompileStats
compileFunctionForWsp(ir::Module &module, ir::Function &func,
                      const CompilerOptions &options)
{
    cwsp_assert(!func.instrumented(),
                "function ", func.name(), " compiled twice");
    CompileStats stats;
    if (!options.instrument) {
        func.setInstrumented();
        return stats;
    }

    stats += formRegions(module, func, options);

    if (options.insertCheckpoints)
        stats += insertCheckpoints(func);

    PruneResult pruning;
    if (options.insertCheckpoints && options.pruneCheckpoints) {
        pruning = pruneCheckpoints(func);
        stats.checkpointsPruned = pruning.pruned;
    }

    if (options.buildRecoverySlices) {
        stats += buildRecoverySlices(
            func, options.pruneCheckpoints ? &pruning : nullptr);
    }

    func.setInstrumented();
    return stats;
}

CompileStats
compileForWsp(ir::Module &module, const CompilerOptions &options)
{
    cwsp_assert(module.laidOut(),
                "layoutMemory() must run before compilation");
    CompileStats stats;
    for (std::size_t f = 0; f < module.numFunctions(); ++f) {
        stats += compileFunctionForWsp(
            module, module.function(static_cast<ir::FuncId>(f)),
            options);
    }
    ir::verifyOrDie(module);
    return stats;
}

} // namespace cwsp::compiler
