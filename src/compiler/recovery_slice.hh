/**
 * @file
 * Recovery-slice synthesis (Sections IV-C, VII). For every static
 * region, emit the short restoration program the recovery runtime
 * executes before resuming the region: each live-in register is either
 * loaded from its checkpoint slot or rebuilt by the rematerialization
 * chain the pruning pass recorded.
 */

#ifndef CWSP_COMPILER_RECOVERY_SLICE_HH
#define CWSP_COMPILER_RECOVERY_SLICE_HH

#include "compiler/checkpoint_pruning.hh"
#include "compiler/compiler.hh"

namespace cwsp::compiler {

/**
 * Populate @p func's recovery-slice table. Boundaries must carry
 * their static ids; @p pruning may be null (every live-in then loads
 * its slot).
 *
 * @return statistics (sliceOps).
 */
CompileStats buildRecoverySlices(ir::Function &func,
                                 const PruneResult *pruning);

} // namespace cwsp::compiler

#endif // CWSP_COMPILER_RECOVERY_SLICE_HH
