/**
 * @file
 * Compilation profiles for the baseline schemes the paper compares
 * against. The hardware-side differences live in src/arch; these
 * wrappers select the compiler-side differences.
 */

#ifndef CWSP_COMPILER_BASELINE_LOWERING_HH
#define CWSP_COMPILER_BASELINE_LOWERING_HH

#include "compiler/compiler.hh"

namespace cwsp::compiler {

/** Uninstrumented build (the paper's baseline has no persistence). */
CompilerOptions baselineOptions();

/** Full cWSP pipeline (regions + checkpoints + pruning + slices). */
CompilerOptions cwspOptions();

/**
 * iDO-style lowering: idempotent regions with unpruned live-out
 * checkpoints; persistence ordering comes from persist barriers at
 * each boundary in the timing model, not from the hardware path.
 */
CompilerOptions idoOptions();

/**
 * Capri-style lowering: regions bounded by the hardware redo buffer
 * (~29 instructions on average per the paper); registers are covered
 * by JIT checkpointing, so no compiler checkpoints or slices.
 */
CompilerOptions capriOptions();

/**
 * ReplayCache-style lowering: regions with live-out checkpoints, no
 * pruning (the scheme replays stores in software at each boundary).
 */
CompilerOptions replayCacheOptions();

} // namespace cwsp::compiler

#endif // CWSP_COMPILER_BASELINE_LOWERING_HH
