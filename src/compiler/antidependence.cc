#include "compiler/antidependence.hh"

#include <algorithm>
#include <map>

#include "analysis/liveness.hh"
#include "sim/logging.hh"

namespace cwsp::compiler {

namespace {

using analysis::AbstractLoc;
using analysis::AliasAnalysis;
using analysis::AliasResult;
using analysis::Cfg;
using analysis::RegMask;

/** Positions (indices) of seed boundaries within one block. */
std::vector<std::uint32_t>
seedPositions(const ir::BasicBlock &blk, const BoundaryPred &has_seed)
{
    std::vector<std::uint32_t> pos;
    for (std::uint32_t k = 0; k <= blk.instrs().size(); ++k) {
        if (has_seed(blk.id(), k))
            pos.push_back(k);
    }
    return pos;
}

/** Greedy optimal stabbing of half-open intervals (lo, hi]. */
std::vector<std::uint32_t>
stabIntervals(std::vector<std::pair<std::uint32_t, std::uint32_t>> ivs)
{
    std::sort(ivs.begin(), ivs.end(),
              [](const auto &a, const auto &b) {
                  return a.second < b.second;
              });
    std::vector<std::uint32_t> stabs;
    std::uint32_t last = ~std::uint32_t{0};
    for (const auto &[lo, hi] : ivs) {
        // A stab at position p cuts (lo, hi] when lo < p <= hi.
        if (last != ~std::uint32_t{0} && lo < last && last <= hi)
            continue;
        stabs.push_back(hi);
        last = hi;
    }
    return stabs;
}

} // namespace

CutResult
computeMemoryCuts(const Cfg &cfg, const AliasAnalysis &aa,
                  const BoundaryPred &has_seed)
{
    CutResult result;
    const auto &func = cfg.function();
    const std::size_t n = cfg.numBlocks();

    // Enumerate memory-reading instructions (loads and atomics) so the
    // cross-block exposure sets can be bitsets over a finite universe.
    struct ReadSite
    {
        ir::BlockId block;
        std::uint32_t index;
        AbstractLoc loc;
    };
    std::vector<ReadSite> reads;
    std::vector<std::vector<std::uint32_t>> readsInBlock(n);
    for (std::size_t b = 0; b < n; ++b) {
        const auto &instrs =
            func.block(static_cast<ir::BlockId>(b)).instrs();
        for (std::uint32_t k = 0; k < instrs.size(); ++k) {
            if (!instrs[k].readsMemory())
                continue;
            readsInBlock[b].push_back(
                static_cast<std::uint32_t>(reads.size()));
            reads.push_back(
                ReadSite{static_cast<ir::BlockId>(b), k,
                         aa.locOf(static_cast<ir::BlockId>(b), k)});
        }
    }

    // Per-block: gen = reads exposed to the block exit (after the last
    // seed boundary); passThrough = no seed boundary anywhere in block.
    std::vector<std::set<std::uint32_t>> gen(n);
    std::vector<bool> pass(n, false);
    std::vector<std::vector<std::uint32_t>> seeds(n);
    for (std::size_t b = 0; b < n; ++b) {
        const auto &blk = func.block(static_cast<ir::BlockId>(b));
        seeds[b] = seedPositions(blk, has_seed);
        std::uint32_t last_seed =
            seeds[b].empty() ? 0 : seeds[b].back();
        pass[b] = seeds[b].empty();
        for (std::uint32_t rid : readsInBlock[b]) {
            if (reads[rid].index >= last_seed || pass[b])
                gen[b].insert(rid);
        }
    }

    // Forward fixpoint: inSet[b] = union over predecessors of their
    // exit sets; exit = gen ∪ (pass ? in : ∅).
    std::vector<std::set<std::uint32_t>> inSet(n), exitSet(n);
    bool changed = true;
    while (changed) {
        changed = false;
        for (ir::BlockId b : cfg.rpo()) {
            std::set<std::uint32_t> in;
            for (ir::BlockId p : cfg.predecessors(b))
                in.insert(exitSet[p].begin(), exitSet[p].end());
            std::set<std::uint32_t> out = gen[b];
            if (pass[b])
                out.insert(in.begin(), in.end());
            if (in != inSet[b] || out != exitSet[b]) {
                inSet[b] = std::move(in);
                exitSet[b] = std::move(out);
                changed = true;
            }
        }
    }

    // Cross-block cuts: a store in the pre-first-seed prefix of block b
    // that may alias an incoming exposed read gets a cut right before
    // it; one cut per block prefix suffices (it stabs everything that
    // follows it in the prefix as well).
    std::set<CutPos> cuts;
    for (std::size_t b = 0; b < n; ++b) {
        auto bid = static_cast<ir::BlockId>(b);
        const auto &instrs = func.block(bid).instrs();
        std::uint32_t first_seed = seeds[b].empty()
                                       ? static_cast<std::uint32_t>(
                                             instrs.size())
                                       : seeds[b].front();
        if (inSet[b].empty())
            continue;
        for (std::uint32_t k = 0; k < first_seed; ++k) {
            if (!instrs[k].writesMemory() ||
                instrs[k].op == ir::Opcode::Checkpoint)
                continue;
            AbstractLoc sloc = aa.locOf(bid, k);
            bool hit = false;
            for (std::uint32_t rid : inSet[b]) {
                ++result.pairs;
                if (AliasAnalysis::alias(reads[rid].loc, sloc) !=
                    AliasResult::NoAlias) {
                    hit = true;
                    break;
                }
            }
            if (hit) {
                cuts.insert(CutPos{bid, k});
                break; // the cut stabs all later prefix pairs
            }
        }
    }

    // Local pairs: within each seed/cut segment, collect (read, write)
    // may-alias intervals and stab them optimally.
    for (std::size_t b = 0; b < n; ++b) {
        auto bid = static_cast<ir::BlockId>(b);
        const auto &instrs = func.block(bid).instrs();

        std::vector<std::uint32_t> dividers = seeds[b];
        for (const auto &c : cuts) {
            if (c.block == bid)
                dividers.push_back(c.index);
        }
        std::sort(dividers.begin(), dividers.end());
        dividers.erase(std::unique(dividers.begin(), dividers.end()),
                       dividers.end());
        dividers.push_back(static_cast<std::uint32_t>(instrs.size()));

        std::uint32_t seg_start = 0;
        for (std::uint32_t div : dividers) {
            // Segment [seg_start, div).
            std::vector<std::pair<std::uint32_t, std::uint32_t>> ivs;
            std::vector<std::uint32_t> local_reads;
            for (std::uint32_t k = seg_start; k < div; ++k) {
                const ir::Instr &i = instrs[k];
                if (i.writesMemory() &&
                    i.op != ir::Opcode::Checkpoint) {
                    AbstractLoc sloc = aa.locOf(bid, k);
                    for (std::uint32_t rk : local_reads) {
                        ++result.pairs;
                        if (AliasAnalysis::alias(aa.locOf(bid, rk),
                                                 sloc) !=
                            AliasResult::NoAlias) {
                            ivs.emplace_back(rk, k);
                        }
                    }
                }
                if (i.readsMemory())
                    local_reads.push_back(k);
            }
            for (std::uint32_t p : stabIntervals(std::move(ivs)))
                cuts.insert(CutPos{bid, p});
            seg_start = div;
        }
    }

    result.cuts.assign(cuts.begin(), cuts.end());
    return result;
}

CutResult
computeRegisterCuts(const Cfg &cfg, const BoundaryPred &has_seed)
{
    CutResult result;
    const auto &func = cfg.function();
    const std::size_t n = cfg.numBlocks();

    // exposed[r]: since the last boundary, register r has been read
    // while still holding its at-boundary value. A definition of an
    // exposed register is a WAR hazard on checkpoint slot r.
    //
    // Per-block transfer under the current seed set; cuts found feed
    // back as additional dividers so one pass after the fixpoint
    // places them.
    std::vector<RegMask> inExp(n, 0), outExp(n, 0);

    auto transfer = [&](ir::BlockId b, RegMask exp,
                        std::set<CutPos> *cuts) {
        const auto &instrs = func.block(b).instrs();
        RegMask defined = 0; // defined since last boundary
        for (std::uint32_t k = 0; k < instrs.size(); ++k) {
            if (has_seed(b, k) ||
                (cuts && cuts->count(CutPos{b, k}))) {
                exp = 0;
                defined = 0;
            }
            const ir::Instr &i = instrs[k];
            RegMask uses = analysis::Liveness::uses(i);
            RegMask defs = analysis::Liveness::defs(i);
            // Reads of still-boundary-valued registers expose them.
            exp |= uses & ~defined;
            if (defs & exp) {
                if (cuts) {
                    cuts->insert(CutPos{b, k});
                    exp = 0;
                    defined = 0;
                    // Re-process this instruction in the new region:
                    // its own uses become exposed.
                    exp |= uses;
                } else {
                    // Fixpoint phase: act as if a cut were placed.
                    exp = uses;
                    defined = 0;
                }
            }
            defined |= defs;
            exp &= ~defs; // a redefined register's entry value is gone
        }
        if (has_seed(b, static_cast<std::uint32_t>(instrs.size())))
            exp = 0;
        return exp;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (ir::BlockId b : cfg.rpo()) {
            RegMask in = 0;
            for (ir::BlockId p : cfg.predecessors(b))
                in |= outExp[p];
            RegMask out = transfer(b, in, nullptr);
            if (in != inExp[b] || out != outExp[b]) {
                inExp[b] = in;
                outExp[b] = out;
                changed = true;
            }
        }
    }

    std::set<CutPos> cuts;
    for (std::size_t b = 0; b < n; ++b) {
        auto bid = static_cast<ir::BlockId>(b);
        transfer(bid, inExp[b], &cuts);
    }
    result.pairs = cuts.size();
    result.cuts.assign(cuts.begin(), cuts.end());
    return result;
}

} // namespace cwsp::compiler
