/**
 * @file
 * Live-out register checkpointing (Section IV-B): after every
 * definition whose value is live across a region boundary, persist
 * the register into its NVM checkpoint slot so a later region's
 * recovery slice can restore it.
 */

#ifndef CWSP_COMPILER_CHECKPOINT_INSERTION_HH
#define CWSP_COMPILER_CHECKPOINT_INSERTION_HH

#include "compiler/compiler.hh"

namespace cwsp::compiler {

/**
 * Insert Checkpoint instructions into @p func. Requires region
 * boundaries to be present. The insertion discipline maintains the
 * slot invariant: *whenever execution sits at a region boundary b,
 * every register live at b has its current value in its checkpoint
 * slot* — either from a checkpoint inside the current block (placed
 * just before b for registers defined since the previous divider) or
 * from a block-exit checkpoint in the defining block.
 *
 * @return statistics (checkpointsInserted).
 */
CompileStats insertCheckpoints(ir::Function &func);

} // namespace cwsp::compiler

#endif // CWSP_COMPILER_CHECKPOINT_INSERTION_HH
