/**
 * @file
 * Shared declarations for the cWSP compiler pipeline (Section IV of
 * the paper): idempotent region formation, live-out register
 * checkpointing, checkpoint pruning, and recovery-slice synthesis.
 */

#ifndef CWSP_COMPILER_COMPILER_HH
#define CWSP_COMPILER_COMPILER_HH

#include <cstdint>

#include "ir/ir.hh"

namespace cwsp::compiler {

/** The frame-pointer register is runtime-managed, never checkpointed. */
constexpr ir::Reg kFramePointer = 31;

/** Tuning knobs for the WSP compilation pipeline. */
struct CompilerOptions
{
    /// Master switch: when false no pass runs at all (the baseline
    /// binary has no boundaries, checkpoints, or slices).
    bool instrument = true;
    /// Cut memory antidependences (write-after-read) within regions.
    bool cutMemoryAntideps = true;
    /// Cut register WAR hazards (a region reading then redefining a
    /// register). OFF by default: cWSP hardware undo-logs checkpoint
    /// stores unconditionally and reclaims their logs only when the
    /// region is *persisted*, so a region can never clobber its own
    /// recovery inputs (see DESIGN.md §6); the cuts remain available
    /// as an ablation of that hardware rule.
    bool cutRegisterAntideps = false;
    /// Seed a boundary at every natural-loop header (region per
    /// iteration).
    bool boundariesAtLoopHeaders = true;
    /// Seed boundaries around call sites.
    bool boundariesAtCalls = true;
    /// Seed boundaries around atomics and fences.
    bool boundariesAtSync = true;
    /// When nonzero, additionally bound static region length (used by
    /// the Capri baseline whose hardware redo buffer limits regions
    /// to ~29 instructions).
    unsigned maxRegionInstrs = 0;
    /// Insert live-out register checkpoints.
    bool insertCheckpoints = true;
    /// Run the Penny-style optimal checkpoint pruning.
    bool pruneCheckpoints = true;
    /// Synthesize per-region recovery slices.
    bool buildRecoverySlices = true;
};

/** Aggregate statistics from one compilation. */
struct CompileStats
{
    std::uint64_t boundaries = 0;          ///< RegionBoundary instrs
    std::uint64_t memAntidepCuts = 0;      ///< boundaries due to mem WAR
    std::uint64_t regAntidepCuts = 0;      ///< boundaries due to reg WAR
    std::uint64_t checkpointsInserted = 0; ///< before pruning
    std::uint64_t checkpointsPruned = 0;   ///< removed by pruning
    std::uint64_t sliceOps = 0;            ///< total recovery-slice ops

    CompileStats &
    operator+=(const CompileStats &o)
    {
        boundaries += o.boundaries;
        memAntidepCuts += o.memAntidepCuts;
        regAntidepCuts += o.regAntidepCuts;
        checkpointsInserted += o.checkpointsInserted;
        checkpointsPruned += o.checkpointsPruned;
        sliceOps += o.sliceOps;
        return *this;
    }
};

/**
 * Run the full cWSP pipeline over every function of @p module.
 * The module must be laid out. Verifies the result.
 *
 * @return accumulated statistics.
 */
CompileStats compileForWsp(ir::Module &module,
                           const CompilerOptions &options);

} // namespace cwsp::compiler

#endif // CWSP_COMPILER_COMPILER_HH
