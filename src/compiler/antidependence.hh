/**
 * @file
 * Antidependence detection and optimal cut placement (Section IV-A).
 *
 * An idempotent region must not overwrite a location it previously
 * read ("memory antidependence" / write-after-read): re-executing such
 * a region would read its own partially-persisted output. The same
 * discipline is extended to architectural registers whose checkpoint
 * slots double as recovery inputs. Each offending (read, write) pair
 * defines an interval that some region boundary must stab; within one
 * basic block we solve the stabbing problem optimally with the classic
 * greedy (sort by right endpoint), which is the interval special case
 * of the paper's hitting-set formulation. Cross-block pairs are cut
 * directly before the writing instruction.
 */

#ifndef CWSP_COMPILER_ANTIDEPENDENCE_HH
#define CWSP_COMPILER_ANTIDEPENDENCE_HH

#include <functional>
#include <set>
#include <vector>

#include "analysis/alias_analysis.hh"
#include "analysis/cfg.hh"

namespace cwsp::compiler {

/** "Insert a boundary before instruction `index` of `block`". */
struct CutPos
{
    ir::BlockId block = ir::kNoBlock;
    std::uint32_t index = 0;

    bool
    operator<(const CutPos &o) const
    {
        return block != o.block ? block < o.block : index < o.index;
    }
    bool
    operator==(const CutPos &o) const
    {
        return block == o.block && index == o.index;
    }
};

/** Predicate: is there already a boundary before (block, index)? */
using BoundaryPred =
    std::function<bool(ir::BlockId, std::uint32_t)>;

/** Result of one cut computation. */
struct CutResult
{
    std::vector<CutPos> cuts;
    std::uint64_t pairs = 0; ///< antidependence pairs considered
};

/**
 * Compute boundary positions that cut every *memory* antidependence
 * not already cut by a seed boundary.
 *
 * @param cfg       CFG of the function under compilation.
 * @param aa        alias analysis for the same function.
 * @param has_seed  existing (seed) boundary positions.
 */
CutResult computeMemoryCuts(const analysis::Cfg &cfg,
                            const analysis::AliasAnalysis &aa,
                            const BoundaryPred &has_seed);

/**
 * Compute boundary positions that cut every *register* WAR hazard: a
 * region that reads the region-entry value of r and later redefines r
 * would overwrite checkpoint slot r while slot r may still be its own
 * recovery input, so the redefinition must start a new region.
 */
CutResult computeRegisterCuts(const analysis::Cfg &cfg,
                              const BoundaryPred &has_seed);

} // namespace cwsp::compiler

#endif // CWSP_COMPILER_ANTIDEPENDENCE_HH
