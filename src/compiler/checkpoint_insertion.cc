#include "compiler/checkpoint_insertion.hh"

#include <algorithm>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/liveness.hh"
#include "sim/logging.hh"

namespace cwsp::compiler {

namespace {

using analysis::Cfg;
using analysis::Liveness;
using analysis::RegMask;

struct Insertion
{
    std::uint32_t index; ///< insert before this instruction
    ir::Reg reg;
};

} // namespace

CompileStats
insertCheckpoints(ir::Function &func)
{
    CompileStats stats;
    Cfg cfg(func);
    Liveness live(cfg);

    const RegMask fp_mask = analysis::regBit(kFramePointer);

    for (std::size_t b = 0; b < func.numBlocks(); ++b) {
        auto bid = static_cast<ir::BlockId>(b);
        auto &instrs = func.block(bid).instrs();
        auto live_at = live.liveBeforeAll(bid);

        std::vector<Insertion> inserts;
        RegMask defined = 0; // defined since the previous divider

        for (std::uint32_t k = 0; k < instrs.size(); ++k) {
            const ir::Instr &i = instrs[k];
            if (i.op == ir::Opcode::RegionBoundary) {
                // K1: checkpoint registers live here and defined since
                // the previous divider in this block.
                RegMask need = live_at[k] & defined & ~fp_mask;
                analysis::forEachReg(need, [&](ir::Reg r) {
                    inserts.push_back(Insertion{k, r});
                });
                defined = 0;
                continue;
            }
            if (ir::isTerminator(i.op)) {
                // K2: block exit carries locally-defined live values
                // into successor blocks' regions.
                RegMask need =
                    live.liveOut(bid) & defined & ~fp_mask;
                analysis::forEachReg(need, [&](ir::Reg r) {
                    inserts.push_back(Insertion{k, r});
                });
                break;
            }
            defined |= Liveness::defs(i);
        }

        stats.checkpointsInserted += inserts.size();
        // Materialize from the back so indices remain valid.
        std::sort(inserts.begin(), inserts.end(),
                  [](const Insertion &x, const Insertion &y) {
                      return x.index > y.index;
                  });
        for (const auto &ins : inserts) {
            ir::Instr ck;
            ck.op = ir::Opcode::Checkpoint;
            ck.a = ins.reg;
            instrs.insert(instrs.begin() + ins.index, ck);
        }
    }
    return stats;
}

} // namespace cwsp::compiler
