#include "compiler/region_formation.hh"

#include <algorithm>
#include <set>

#include "analysis/alias_analysis.hh"
#include "analysis/cfg.hh"
#include "analysis/dominators.hh"
#include "analysis/loop_info.hh"
#include "compiler/antidependence.hh"
#include "sim/logging.hh"

namespace cwsp::compiler {

namespace {

using analysis::AliasAnalysis;
using analysis::Cfg;
using analysis::Dominators;
using analysis::LoopInfo;

/** Collect seed boundary positions per Section IV-A. */
std::set<CutPos>
collectSeeds(const ir::Function &func, const Cfg &cfg,
             const CompilerOptions &options)
{
    std::set<CutPos> seeds;

    // Function entry: the first region starts with the function.
    seeds.insert(CutPos{0, 0});

    if (options.boundariesAtLoopHeaders) {
        Dominators doms(cfg);
        LoopInfo loops(cfg, doms);
        for (const auto &loop : loops.loops())
            seeds.insert(CutPos{loop.header, 0});
    }

    for (std::size_t b = 0; b < func.numBlocks(); ++b) {
        auto bid = static_cast<ir::BlockId>(b);
        const auto &instrs = func.block(bid).instrs();
        for (std::uint32_t k = 0; k < instrs.size(); ++k) {
            const ir::Instr &i = instrs[k];
            if (options.boundariesAtCalls &&
                i.op == ir::Opcode::Call) {
                seeds.insert(CutPos{bid, k});
                seeds.insert(CutPos{bid, k + 1});
            }
            if (options.boundariesAtSync) {
                if (ir::isAtomic(i.op)) {
                    seeds.insert(CutPos{bid, k});
                    seeds.insert(CutPos{bid, k + 1});
                } else if (i.op == ir::Opcode::Fence) {
                    seeds.insert(CutPos{bid, k + 1});
                }
            }
        }
    }
    return seeds;
}

/** Enforce a static bound on region length within each block. */
void
addLengthCaps(const ir::Function &func, unsigned max_len,
              std::set<CutPos> &positions)
{
    for (std::size_t b = 0; b < func.numBlocks(); ++b) {
        auto bid = static_cast<ir::BlockId>(b);
        const auto &instrs = func.block(bid).instrs();
        unsigned run = 0;
        for (std::uint32_t k = 0; k < instrs.size(); ++k) {
            if (positions.count(CutPos{bid, k}))
                run = 0;
            if (++run > max_len) {
                positions.insert(CutPos{bid, k});
                run = 1;
            }
        }
    }
}

} // namespace

CompileStats
formRegions(ir::Module &module, ir::Function &func,
            const CompilerOptions &options)
{
    CompileStats stats;
    Cfg cfg(func);

    std::set<CutPos> positions = collectSeeds(func, cfg, options);

    auto has_boundary = [&positions](ir::BlockId b, std::uint32_t k) {
        return positions.count(CutPos{b, k}) > 0;
    };

    if (options.cutMemoryAntideps) {
        AliasAnalysis aa(module, cfg);
        CutResult mem = computeMemoryCuts(cfg, aa, has_boundary);
        stats.memAntidepCuts += mem.cuts.size();
        positions.insert(mem.cuts.begin(), mem.cuts.end());
    }

    if (options.cutRegisterAntideps) {
        CutResult reg = computeRegisterCuts(cfg, has_boundary);
        stats.regAntidepCuts += reg.cuts.size();
        positions.insert(reg.cuts.begin(), reg.cuts.end());
    }

    if (options.maxRegionInstrs > 0)
        addLengthCaps(func, options.maxRegionInstrs, positions);

    // Materialize: insert boundary instructions from the back of each
    // block so earlier indices stay valid. Positions past the
    // terminator (e.g. "after" a trailing call) are clamped to just
    // before the terminator... they cannot occur because calls are
    // never terminators, but clamp defensively.
    ir::StaticRegionId next_id = 0;
    for (std::size_t b = 0; b < func.numBlocks(); ++b) {
        auto bid = static_cast<ir::BlockId>(b);
        auto &instrs = func.block(bid).instrs();
        std::vector<std::uint32_t> here;
        for (const auto &p : positions) {
            if (p.block == bid)
                here.push_back(p.index);
        }
        std::sort(here.rbegin(), here.rend());
        for (std::uint32_t k : here) {
            std::uint32_t at = std::min(
                k, static_cast<std::uint32_t>(instrs.size() - 1));
            ir::Instr boundary;
            boundary.op = ir::Opcode::RegionBoundary;
            boundary.imm = 0; // ids assigned below
            instrs.insert(instrs.begin() + at, boundary);
        }
    }

    // Assign static region ids in block/instruction order and size the
    // recovery-slice table accordingly.
    for (std::size_t b = 0; b < func.numBlocks(); ++b) {
        for (auto &i : func.block(static_cast<ir::BlockId>(b)).instrs()) {
            if (i.op == ir::Opcode::RegionBoundary)
                i.imm = static_cast<std::int64_t>(next_id++);
        }
    }
    func.recoverySlices().resize(next_id);
    stats.boundaries = next_id;
    return stats;
}

} // namespace cwsp::compiler
