#include "compiler/recovery_slice.hh"

#include "analysis/cfg.hh"
#include "analysis/liveness.hh"
#include "sim/logging.hh"

namespace cwsp::compiler {

CompileStats
buildRecoverySlices(ir::Function &func, const PruneResult *pruning)
{
    CompileStats stats;
    analysis::Cfg cfg(func);
    analysis::Liveness live(cfg);

    auto &slices = func.recoverySlices();

    for (std::size_t bb = 0; bb < func.numBlocks(); ++bb) {
        auto bid = static_cast<ir::BlockId>(bb);
        const auto &instrs = func.block(bid).instrs();
        for (std::uint32_t k = 0; k < instrs.size(); ++k) {
            const ir::Instr &i = instrs[k];
            if (i.op != ir::Opcode::RegionBoundary)
                continue;
            auto rid = static_cast<ir::StaticRegionId>(i.imm);
            cwsp_assert(rid < slices.size(),
                        "region id out of slice-table range");
            ir::RecoverySlice &slice = slices[rid];
            slice.ops.clear();
            slice.liveIns.clear();

            analysis::RegMask mask =
                live.liveBefore(bid, k) &
                ~analysis::regBit(kFramePointer);
            // Two passes: plain slot restores first, then
            // rematerialization chains — chains may read the
            // slot-restored registers (two-register Apply operands).
            std::vector<std::pair<ir::Reg, const RematPlan *>> chains;
            analysis::forEachReg(mask, [&](ir::Reg r) {
                slice.liveIns.push_back(r);
                const RematPlan *plan = nullptr;
                if (pruning) {
                    auto it =
                        pruning->chains.find(std::make_pair(rid, r));
                    if (it != pruning->chains.end())
                        plan = &it->second;
                }
                if (plan) {
                    chains.emplace_back(r, plan);
                } else {
                    ir::RsOp op;
                    op.kind = ir::RsOp::Kind::LoadSlot;
                    op.dst = r;
                    op.slot = r;
                    slice.ops.push_back(op);
                }
            });
            for (const auto &[r, plan] : chains) {
                (void)r;
                for (const auto &op : plan->ops)
                    slice.ops.push_back(op);
            }
            stats.sliceOps += slice.ops.size();
        }
    }
    return stats;
}

} // namespace cwsp::compiler
