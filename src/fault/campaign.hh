/**
 * @file
 * The fault-injection campaign engine. For a set of apps and schemes
 * it enumerates semantically interesting crash points from a traced
 * run (fault/crash_points.hh), decorates them into single, nested,
 * and media-faulted crash schedules, runs every case differentially
 * against a golden uninterrupted run, auto-shrinks failing cases to a
 * minimal (app, scheme, schedule, faults) repro, and emits a
 * machine-readable report (tools/cwsp_faultcampaign front-end).
 *
 * Pass criteria per case:
 *  - recovered globals bit-identical to the golden run,
 *  - the program's return value matches,
 *  - the device-output stream is exactly-once (skipped when recovery
 *    degraded to a full restart: re-execution from entry necessarily
 *    re-issues output — the documented cost of degradation step 3),
 *  - every media fault that was actually injected was *detected*
 *    (silent corruption is a failure even when the final state
 *    happens to converge).
 *
 * Concurrent apps (workloads::concurrentAppTable) swap the first
 * three criteria for a durable-linearizability verdict
 * (obs/durable_lin.hh) plus per-worker return validation: post-crash
 * interleavings legitimately diverge from the golden final state, so
 * the recovered image is judged against the pre-crash history
 * instead. Each (app, scheme) sweeps one context per deterministic
 * interleaving schedule, and the shrinker additionally tries
 * dropping the schedule from a failing case's repro.
 */

#ifndef CWSP_FAULT_CAMPAIGN_HH
#define CWSP_FAULT_CAMPAIGN_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "fault/crash_points.hh"
#include "fault/fault_model.hh"
#include "workloads/concurrent.hh"

namespace cwsp {
class StatsRegistry; // sim/stats.hh
}

namespace cwsp::core {
class CheckpointCache; // core/sim_checkpoint.hh
}

namespace cwsp::fault {

/** What to sweep. */
struct CampaignOptions
{
    /** Workload names (workloads::appByName); required, non-empty. */
    std::vector<std::string> apps;
    /** Scheme presets; empty = all six. */
    std::vector<std::string> schemes;
    /** Crash points kept per kind per (app, scheme). */
    std::size_t pointsPerKind = 3;
    /** Add nested-crash schedules (mid-boot / mid-replay / later). */
    bool nested = true;
    /** Add torn-append / bit-flip / stale-slot cases. */
    bool mediaFaults = true;
    /** Auto-shrink failing cases to a minimal repro. */
    bool shrink = true;
    /**
     * Fork every case from a SimCheckpoint captured during the golden
     * pass instead of re-executing its pre-crash prefix. Verdicts are
     * bit-identical either way (tests/test_ckpt_equiv.cc); disable to
     * cross-check or to bound memory below CWSP_CKPT_CACHE_MB.
     */
    bool forkCheckpoints = true;
    /** Worker threads; 0 = hardware concurrency. */
    unsigned jobs = 0;
    std::uint64_t maxInstrs = 200'000'000;
    /**
     * Concurrent apps (workloads::concurrentAppTable) only: base seed
     * of the deterministic interleaving schedules (--seed) and how
     * many schedules to sweep per (app, scheme) (--schedules).
     * Schedule 0 is always the unjittered legacy timing; schedule
     * k >= 1 derives a distinct jitter seed (core/interleave.hh).
     * Single-threaded apps ignore both.
     */
    std::uint64_t interleaveSeed = 1;
    std::uint32_t numSchedules = 2;
    /**
     * Inject the seeded CAS-ordering bug (arch::SchemeConfig::
     * bugCasSkipPersist: the CAS becomes visible but never durable)
     * into every concurrent context. The checker's self-test target:
     * the campaign must catch it as a durable-linearizability
     * violation and shrink a minimal repro (--seed-cas-bug).
     */
    bool seedCasBug = false;
};

/** One differential crash run. */
struct CampaignCase
{
    std::string app;
    std::string scheme;
    CrashSchedule schedule;
    FaultPlan plan;
    /** Kind of the point the initial crash tick came from. */
    CrashPointKind pointKind = CrashPointKind::RegionBegin;
    /**
     * Concurrent campaign: interleaving schedule index and its
     * resolved jitter config. The config rides in the case so the
     * shrinker can retry a failing case with jitter disabled (is the
     * schedule part of the minimal repro?) without a context rebuild.
     */
    std::uint32_t ilvIndex = 0;
    arch::InterleaveConfig interleave;

    /** "bzip2/cwsp @1042+65 torn_append@0" (for logs and reports). */
    std::string label() const;
};

/** Phase count of core::RecoveryPhase (campaign.cc pins the match). */
constexpr std::size_t kRecoveryPhases = 5;

/** Outcome of one case. */
struct CaseResult
{
    CampaignCase c;
    bool ran = false;        ///< false: exception (detail says what)
    bool crashed = false;    ///< the first crash fired in-run
    bool consistent = false; ///< globals match golden
    bool resultMatch = false;
    bool ioChecked = false; ///< exactly-once comparison performed
    bool ioMatch = true;
    /** Injected media faults were all detected (vacuous when none). */
    bool faultsDetected = true;
    bool pass = false;
    std::uint64_t divergences = 0; ///< total divergent words
    FaultStats faults;
    /** Timed recovery window of every injected failure, cycles, in
     *  schedule order (nested failures absorbed by a window do not
     *  open one of their own). */
    std::vector<std::uint64_t> recoveryWindows;
    /** Cycles per recovery phase summed over this case's windows,
     *  core::RecoveryPhase order (detect, scan, undo replay, slice
     *  re-execution, resume). The five always tile the windows
     *  exactly: their sum equals the sum of recoveryWindows. */
    std::uint64_t recoveryPhaseCycles[kRecoveryPhases] = {0, 0, 0, 0,
                                                          0};
    /** Instructions committed past the resume point at the first
     *  failure — work the crash destroyed. */
    std::uint64_t lostWork = 0;
    /**
     * Durable-linearizability verdict of a concurrent case ("pass",
     * "violation", "vacuous"; empty for single-threaded cases, whose
     * verdict is the differential check instead).
     */
    std::string dlVerdict;
    std::uint32_t dlInvokedOps = 0;   ///< ops with committed inv
    std::uint32_t dlCompletedOps = 0; ///< ops durably acknowledged
    std::string detail; ///< human-readable failure explanation
};

/**
 * Checkpoint-cache behaviour over a forked campaign. Fallbacks > 0
 * means the CWSP_CKPT_CACHE_MB byte cap (or an identity mismatch)
 * degraded part of the sweep to from-scratch execution — slower,
 * never wrong.
 */
struct CkptCacheReport
{
    bool enabled = false;
    std::uint64_t captures = 0;
    std::uint64_t forks = 0;
    std::uint64_t evictions = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t bytesResident = 0;
    std::uint64_t entries = 0;
};

/**
 * Fixed-width bucket histogram: bucket i counts samples in
 * [i*bucketWidth, (i+1)*bucketWidth); the last bucket absorbs
 * overflow. Filled from the deterministic case order, so it is
 * independent of the jobs count.
 */
struct RecoveryHistogram
{
    std::uint64_t bucketWidth = 64;
    std::vector<std::uint64_t> counts;
    std::uint64_t samples = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::uint64_t total = 0;

    void add(std::uint64_t v);
    double
    mean() const
    {
        return samples ? static_cast<double>(total) /
                             static_cast<double>(samples)
                       : 0.0;
    }
};

/** Histogram resolution (buckets per histogram). */
constexpr std::size_t kRecoveryHistBuckets = 64;

/**
 * Per-scheme recovery observability aggregated over a campaign: the
 * raw material of the recovery-latency vs. runtime-overhead Pareto
 * report (cwsp_analyze --recovery-report).
 */
struct SchemeRecoveryStats
{
    std::string scheme;
    std::uint64_t crashes = 0; ///< recovery windows observed
    /** Recovery-window length, cycles (bucket width 64). */
    RecoveryHistogram latency;
    /** Lost work per crashed case, instructions (bucket width 1024). */
    RecoveryHistogram lostWork;
    /** Cycles per phase summed over every window, core::RecoveryPhase
     *  order; the five sum to latency.total. */
    std::uint64_t phaseCycles[kRecoveryPhases] = {0, 0, 0, 0, 0};
    /**
     * Geometric-mean fault-free runtime of this scheme over the
     * campaign's apps, relative to the baseline scheme's. 0 when the
     * campaign did not sweep baseline (overhead unavailable).
     */
    double runtimeOverhead = 0.0;
    /** Fault-free timed cycles per app (campaign app order). */
    std::vector<std::pair<std::string, std::uint64_t>> goldenCycles;
    /** Durable-linearizability verdict totals over this scheme's
     *  concurrent cases (all zero for single-threaded campaigns). */
    std::uint64_t dlChecked = 0;
    std::uint64_t dlPass = 0;
    std::uint64_t dlViolation = 0;
    std::uint64_t dlVacuous = 0;
};

/** Aggregate outcome. */
struct CampaignReport
{
    std::vector<CaseResult> cases; ///< deterministic order
    /** Minimal repros of every failing case (post-shrink). */
    std::vector<CaseResult> failures;
    FaultStats totals;
    std::size_t casesRun = 0;
    std::size_t casesPassed = 0;
    std::size_t shrinkRuns = 0; ///< extra runs the shrinker spent
    CkptCacheReport ckptCache;  ///< forked-mode cache behaviour
    /** Per-scheme recovery aggregates, campaign scheme order. */
    std::vector<SchemeRecoveryStats> recovery;

    bool allPassed() const { return failures.empty(); }

    /** Machine-readable report (stable schema, see internals.md). */
    void writeJson(std::ostream &os) const;

    /**
     * Register the campaign outcome in @p reg — counters under
     * "fault_campaign." and "ckpt.", per-scheme recovery histograms
     * and phase totals under "recovery.<scheme>." — so the
     * cwsp_faultcampaign --stats-json export nests hierarchically
     * exactly like cwsp_run's. Histograms are refilled from the raw
     * per-case windows (exact moments, not bucket-quantized).
     */
    void fillStats(StatsRegistry &reg) const;
};

/**
 * Build and run the campaign described by @p options. Cases run
 * across a BatchRunner worker pool; results are deterministic and
 * independent of the jobs count.
 */
CampaignReport runCampaign(const CampaignOptions &options);

/**
 * Run one case differentially and fill a CaseResult (exposed for the
 * shrinker, tests, and the --crash-at-event CLI path). @p golden_*
 * describe the uninterrupted run of the same module.
 */
struct GoldenRef
{
    const ir::Module *module = nullptr;
    const core::SystemConfig *config = nullptr;
    Word result = 0;
    const interp::SparseMemory *memory = nullptr;
    const std::vector<arch::IoRecord> *ioStream = nullptr;
    /**
     * Optional compiled commit stream of the golden run. When set,
     * replay-eligible epochs of every case skip re-interpretation
     * (bit-identical results, see WholeSystemSim::runWithCrashes).
     */
    const core::CommitStream *stream = nullptr;
    /**
     * Optional checkpoint cache populated during the golden pass.
     * runCase() then looks up "<ckptKeyBase>:<first crash tick>" and
     * forks the case from the checkpoint; a miss (evicted or never
     * captured) falls back to from-scratch execution and is counted.
     */
    core::CheckpointCache *ckptCache = nullptr;
    std::string ckptKeyBase;
    /**
     * Concurrent campaign: thread roster (null = the single-threaded
     * {ThreadSpec{}} default) plus the structure spec and per-worker
     * op sequences driving the durable-linearizability verdict. When
     * dlSpec is set, runCase() swaps the differential globals/IO
     * checks for the checker's verdict (post-crash interleavings
     * legitimately diverge from the golden run's final state).
     */
    const std::vector<core::ThreadSpec> *threads = nullptr;
    const workloads::ConcurrentSpec *dlSpec = nullptr;
    const std::vector<std::vector<workloads::ConcurrentOp>> *dlOps =
        nullptr;
};

CaseResult runCase(const CampaignCase &c, const GoldenRef &golden,
                   std::uint64_t max_instrs = 200'000'000);

/** The six scheme presets, figure order. */
const std::vector<std::string> &allSchemeNames();

} // namespace cwsp::fault

#endif // CWSP_FAULT_CAMPAIGN_HH
