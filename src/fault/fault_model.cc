#include "fault/fault_model.hh"

namespace cwsp::fault {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::TornAppend: return "torn_append";
      case FaultKind::BitFlip: return "bit_flip";
      case FaultKind::StaleCheckpointSlot: return "stale_ckpt_slot";
    }
    return "?";
}

bool
parseFaultKind(const std::string &name, FaultKind &out)
{
    if (name == "torn_append") {
        out = FaultKind::TornAppend;
        return true;
    }
    if (name == "bit_flip") {
        out = FaultKind::BitFlip;
        return true;
    }
    if (name == "stale_ckpt_slot") {
        out = FaultKind::StaleCheckpointSlot;
        return true;
    }
    return false;
}

std::string
CrashSchedule::describe() const
{
    std::string out;
    for (std::size_t i = 0; i < ticks.size(); ++i) {
        if (i)
            out += "+";
        out += std::to_string(ticks[i]);
    }
    return out;
}

void
FaultStats::mergeFrom(const FaultStats &other)
{
    crashesInjected += other.crashesInjected;
    nestedCrashes += other.nestedCrashes;
    recoveryCrashes += other.recoveryCrashes;
    undoReplayPasses += other.undoReplayPasses;
    partialReplayRecords += other.partialReplayRecords;
    faultsRequested += other.faultsRequested;
    faultsApplied += other.faultsApplied;
    corruptRecordsDetected += other.corruptRecordsDetected;
    tornTailsDropped += other.tornTailsDropped;
    regionRestarts += other.regionRestarts;
    fullRestarts += other.fullRestarts;
    staleSlotsDetected += other.staleSlotsDetected;
    atomicResumes += other.atomicResumes;
}

} // namespace cwsp::fault
