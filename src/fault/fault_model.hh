/**
 * @file
 * Fault-campaign model types: crash schedules (nested power
 * failures), NVM media faults injected at the undo-log layer, and the
 * detection/degradation counters the hardened recovery path fills.
 *
 * The media model follows the hardware's trust boundaries:
 *
 *  - A *torn append* is a multi-word undo record cut between words by
 *    the failure. Log-before-accept ordering (the record is durable
 *    before its store may admit to the WPQ) implies the guarded store
 *    never reached NVM, so a CRC failure on the area's newest record
 *    is attributed to a torn in-flight append and the tail is safe to
 *    drop (degradation step 1).
 *  - A *bit flip* models media retention failure of an older, fully
 *    written record. Its guarded store did persist, so the record
 *    cannot simply be dropped: if the corrupt record sits in the
 *    resume region's data log, the region is restarted (the record is
 *    skipped; re-execution of the antidependence-free region rewrites
 *    the address before any read — degradation step 2); any other
 *    corruption (checkpoint-slot records, non-resume regions) forces
 *    a full restart on pristine memory (degradation step 3).
 *  - A *stale checkpoint slot* is a slot write the media dropped. The
 *    MC stamps slot writes (modeled by CrashState::ckptSlotImage);
 *    the recovery slice validates every LoadSlot against the stamp
 *    and degrades to a full restart on mismatch.
 */

#ifndef CWSP_FAULT_FAULT_MODEL_HH
#define CWSP_FAULT_FAULT_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace cwsp::fault {

/** Kinds of NVM media faults the campaign can seed. */
enum class FaultKind : std::uint8_t {
    TornAppend,          ///< newest in-flight append cut between words
    BitFlip,             ///< one bit of a live undo record flipped
    StaleCheckpointSlot, ///< a checkpoint-slot write the media lost
};

/** Stable name ("torn_append", "bit_flip", "stale_ckpt_slot"). */
const char *faultKindName(FaultKind kind);

/** Parse a stable name back; false when unknown. */
bool parseFaultKind(const std::string &name, FaultKind &out);

/** One seeded media fault, bound to one failure of the schedule. */
struct MediaFault
{
    FaultKind kind = FaultKind::TornAppend;
    /**
     * Which failure of the CrashSchedule this fault decorates
     * (0-based ordinal over schedule entries). Entries consumed while
     * recovery itself is re-crashed do not evaluate media faults.
     */
    std::uint32_t crashIndex = 0;
    /**
     * BitFlip target region; 0 picks automatically: the resume
     * region's data log when one exists (exercises degradation step
     * 2), else the area's newest region.
     */
    RegionId region = 0;
    /**
     * BitFlip target record, counted from the newest record of the
     * target region. The injector refuses to flip the area's globally
     * newest record (that presents as a torn tail, a different
     * degradation class) and probes older records instead.
     */
    std::size_t recordIndex = 0;
    unsigned bit = 0; ///< BitFlip: 0..63 old value, 64..127 address
};

/** The set of media faults seeded into one crash run. */
struct FaultPlan
{
    std::vector<MediaFault> faults;

    bool empty() const { return faults.empty(); }

    /** Faults bound to failure ordinal @p crash_index. */
    std::vector<MediaFault>
    faultsFor(std::uint32_t crash_index) const
    {
        std::vector<MediaFault> out;
        for (const auto &f : faults)
            if (f.crashIndex == crash_index)
                out.push_back(f);
        return out;
    }
};

/**
 * A sequence of power failures. ticks[0] is an absolute cycle of the
 * initial run; every later entry is relative to the previous failure
 * (i.e. cycles after power restore) and may land inside the timed
 * recovery window — mid-undo-replay or mid-recovery-slice — which
 * re-enters recovery from scratch (the protocol is idempotent).
 */
struct CrashSchedule
{
    std::vector<Tick> ticks;

    CrashSchedule() = default;
    CrashSchedule(std::initializer_list<Tick> t) : ticks(t) {}
    explicit CrashSchedule(std::vector<Tick> t) : ticks(std::move(t)) {}

    bool empty() const { return ticks.empty(); }
    std::size_t size() const { return ticks.size(); }

    /** "1000" or "1000+40+200" (later entries restore-relative). */
    std::string describe() const;
};

/** Detection / degradation counters of one crash-and-recover run. */
struct FaultStats
{
    std::uint64_t crashesInjected = 0;
    std::uint64_t nestedCrashes = 0;   ///< failures after the first
    std::uint64_t recoveryCrashes = 0; ///< failures inside recovery
    /** Complete undo-replay passes (re-entries count again). */
    std::uint64_t undoReplayPasses = 0;
    /** Records a re-crashed replay pass had applied before dying. */
    std::uint64_t partialReplayRecords = 0;

    std::uint64_t faultsRequested = 0; ///< media faults evaluated
    std::uint64_t faultsApplied = 0;   ///< actually injectable

    std::uint64_t corruptRecordsDetected = 0;
    std::uint64_t tornTailsDropped = 0;   ///< degradation step 1
    std::uint64_t regionRestarts = 0;     ///< degradation step 2
    std::uint64_t fullRestarts = 0;       ///< degradation step 3
    std::uint64_t staleSlotsDetected = 0;

    std::uint64_t atomicResumes = 0; ///< resumeAfterAtomic recoveries

    /** Any degradation beyond dropping a torn tail. */
    bool
    degraded() const
    {
        return regionRestarts != 0 || fullRestarts != 0;
    }

    void mergeFrom(const FaultStats &other);
};

} // namespace cwsp::fault

#endif // CWSP_FAULT_FAULT_MODEL_HH
