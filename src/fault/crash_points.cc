#include "fault/crash_points.hh"

#include <algorithm>
#include <array>
#include <set>

#include "ir/ir.hh"
#include "sim/logging.hh"

namespace cwsp::fault {

const char *
crashPointKindName(CrashPointKind kind)
{
    switch (kind) {
      case CrashPointKind::RegionBegin: return "region_begin";
      case CrashPointKind::RegionPersist: return "region_persist";
      case CrashPointKind::MidDrain: return "mid_drain";
      case CrashPointKind::UndoAppend: return "undo_append";
      case CrashPointKind::MidRecovery: return "mid_recovery";
      case CrashPointKind::AtomicCommit: return "atomic_commit";
    }
    return "?";
}

bool
parseCrashPointKind(const std::string &name, CrashPointKind &out)
{
    static constexpr std::array<CrashPointKind, kNumCrashPointKinds>
        kinds = {CrashPointKind::RegionBegin,
                 CrashPointKind::RegionPersist,
                 CrashPointKind::MidDrain,
                 CrashPointKind::UndoAppend,
                 CrashPointKind::MidRecovery,
                 CrashPointKind::AtomicCommit};
    for (CrashPointKind k : kinds) {
        if (name == crashPointKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

void
CrashPointCollector::onTraceEvent(const sim::TraceEvent &event)
{
    switch (event.kind) {
      case sim::TraceEventKind::RegionBegin:
        // One tick after the boundary commits: the region is open in
        // the RBT but (typically) nothing of it has persisted.
        raw_.push_back({event.tick + 1, CrashPointKind::RegionBegin,
                        event.arg0});
        break;
      case sim::TraceEventKind::RegionPersist:
        raw_.push_back({event.tick + 1, CrashPointKind::RegionPersist,
                        event.arg0});
        break;
      case sim::TraceEventKind::SchemeDrain:
        // Halfway through the stall: the persist path is saturated.
        if (event.duration > 1)
            raw_.push_back({event.tick + event.duration / 2,
                            CrashPointKind::MidDrain, event.arg0});
        break;
      case sim::TraceEventKind::UndoAppend:
        // One tick after the append: the record is durable, the
        // guarded store is (at best) just admitted.
        raw_.push_back({event.tick + 1, CrashPointKind::UndoAppend,
                        event.arg0});
        break;
      case sim::TraceEventKind::AtomicCommit:
        // One tick after an atomic RMW commits: the interleaving
        // boundary where a cross-core winner just became visible —
        // the durable-linearizability checker's prime suspects.
        raw_.push_back({event.tick + 1, CrashPointKind::AtomicCommit,
                        event.arg0});
        break;
      default:
        break;
    }
}

std::vector<CrashPoint>
CrashPointCollector::points(std::size_t max_per_kind,
                            Tick max_tick) const
{
    // Dedup by tick across kinds (earliest-harvested wins: one crash
    // instant is one state, whatever triggered our interest in it).
    std::set<Tick> seen;
    std::array<std::vector<CrashPoint>, kNumCrashPointKinds> byKind;
    for (const auto &p : raw_) {
        if (p.tick == 0 || (max_tick != 0 && p.tick >= max_tick))
            continue;
        if (!seen.insert(p.tick).second)
            continue;
        byKind[static_cast<std::size_t>(p.kind)].push_back(p);
    }

    std::vector<CrashPoint> out;
    for (auto &vec : byKind) {
        std::sort(vec.begin(), vec.end(),
                  [](const CrashPoint &a, const CrashPoint &b) {
                      return a.tick < b.tick;
                  });
        if (max_per_kind == 0 || vec.size() <= max_per_kind) {
            out.insert(out.end(), vec.begin(), vec.end());
            continue;
        }
        // Even subsample keeping the extremes: index i of n picks
        // floor(i * (size-1) / (n-1)).
        if (max_per_kind == 1) {
            out.push_back(vec[vec.size() / 2]);
            continue;
        }
        for (std::size_t i = 0; i < max_per_kind; ++i) {
            std::size_t j =
                i * (vec.size() - 1) / (max_per_kind - 1);
            out.push_back(vec[j]);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const CrashPoint &a, const CrashPoint &b) {
                  return a.tick < b.tick;
              });
    return out;
}

CrashPointSet
enumerateCrashPoints(const ir::Module &module,
                     const core::SystemConfig &config,
                     const std::vector<core::ThreadSpec> &threads,
                     std::size_t max_per_kind)
{
    CrashPointCollector collector;
    core::WholeSystemSim sim(module, config);
    sim.attachTraceSink(&collector);
    CrashPointSet set;
    set.runCycles = sim.run(threads).cycles;
    sim.attachTraceSink(nullptr);

    // Bound to the run: a crash at tick >= runCycles never fires
    // (the program has finished).
    set.points = collector.points(max_per_kind, set.runCycles);
    return set;
}

} // namespace cwsp::fault
