#include "fault/campaign.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <sstream>

#include "core/consistency_checker.hh"
#include "core/sim_checkpoint.hh"
#include "core/whole_system_sim.hh"
#include "core/interleave.hh"
#include "driver/batch_runner.hh"
#include "interp/interpreter.hh"
#include "obs/durable_lin.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "workloads/concurrent.hh"
#include "workloads/workload.hh"

namespace cwsp::fault {

namespace {

using core::recovery_timing::kBootCycles;

static_assert(kRecoveryPhases == core::kNumRecoveryPhases,
              "campaign phase accounting mirrors core::RecoveryPhase");

/** JSON keys of the per-phase cycle totals, RecoveryPhase order. */
constexpr const char *kPhaseJsonKeys[kRecoveryPhases] = {
    "detect", "scan", "undo_replay", "slice_reexec", "resume"};

/**
 * Schemes with NVM undo-log media a fault can target. Battery-backed
 * Capri keeps no log (its redo buffer flushes on failure), and
 * baseline/psp record nothing, so torn/bit-flip/stale-slot cases
 * would be vacuous there.
 */
bool
schemeHasLogMedia(const std::string &scheme)
{
    return scheme == "cwsp" || scheme == "ido" ||
           scheme == "replaycache";
}

std::string
faultBrief(const MediaFault &f)
{
    std::ostringstream os;
    os << faultKindName(f.kind) << "@" << f.crashIndex;
    return os.str();
}

void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char ch : s) {
        switch (ch) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20)
                os << ' ';
            else
                os << ch;
        }
    }
    os << '"';
}

void
writeFaultStatsJson(std::ostream &os, const FaultStats &s)
{
    os << "{\"crashes_injected\": " << s.crashesInjected
       << ", \"nested_crashes\": " << s.nestedCrashes
       << ", \"recovery_crashes\": " << s.recoveryCrashes
       << ", \"undo_replay_passes\": " << s.undoReplayPasses
       << ", \"partial_replay_records\": " << s.partialReplayRecords
       << ", \"faults_requested\": " << s.faultsRequested
       << ", \"faults_applied\": " << s.faultsApplied
       << ", \"corrupt_records_detected\": "
       << s.corruptRecordsDetected
       << ", \"torn_tails_dropped\": " << s.tornTailsDropped
       << ", \"region_restarts\": " << s.regionRestarts
       << ", \"full_restarts\": " << s.fullRestarts
       << ", \"stale_slots_detected\": " << s.staleSlotsDetected
       << ", \"atomic_resumes\": " << s.atomicResumes << "}";
}

void
writeCaseJson(std::ostream &os, const CaseResult &r)
{
    os << "{\"app\": ";
    jsonEscape(os, r.c.app);
    os << ", \"scheme\": ";
    jsonEscape(os, r.c.scheme);
    os << ", \"schedule\": ";
    jsonEscape(os, r.c.schedule.describe());
    os << ", \"point_kind\": ";
    jsonEscape(os, crashPointKindName(r.c.pointKind));
    os << ", \"ilv\": " << r.c.ilvIndex;
    if (!r.dlVerdict.empty()) {
        os << ", \"dl_verdict\": ";
        jsonEscape(os, r.dlVerdict);
        os << ", \"dl_invoked\": " << r.dlInvokedOps
           << ", \"dl_completed\": " << r.dlCompletedOps;
    }
    os << ", \"faults\": [";
    for (std::size_t i = 0; i < r.c.plan.faults.size(); ++i) {
        if (i)
            os << ", ";
        jsonEscape(os, faultBrief(r.c.plan.faults[i]));
    }
    os << "], \"pass\": " << (r.pass ? "true" : "false")
       << ", \"ran\": " << (r.ran ? "true" : "false")
       << ", \"crashed\": " << (r.crashed ? "true" : "false")
       << ", \"consistent\": " << (r.consistent ? "true" : "false")
       << ", \"result_match\": "
       << (r.resultMatch ? "true" : "false")
       << ", \"io_checked\": " << (r.ioChecked ? "true" : "false")
       << ", \"io_match\": " << (r.ioMatch ? "true" : "false")
       << ", \"faults_detected\": "
       << (r.faultsDetected ? "true" : "false")
       << ", \"divergences\": " << r.divergences
       << ", \"lost_work\": " << r.lostWork
       << ", \"recovery_windows\": [";
    for (std::size_t i = 0; i < r.recoveryWindows.size(); ++i)
        os << (i ? ", " : "") << r.recoveryWindows[i];
    os << "], \"recovery_phases\": {";
    for (std::size_t p = 0; p < kRecoveryPhases; ++p) {
        os << (p ? ", " : "") << "\"" << kPhaseJsonKeys[p]
           << "\": " << r.recoveryPhaseCycles[p];
    }
    os << "}, \"stats\": ";
    writeFaultStatsJson(os, r.faults);
    if (!r.detail.empty()) {
        os << ", \"detail\": ";
        jsonEscape(os, r.detail);
    }
    os << "}";
}

/** Shortest round-trippable decimal for a JSON number. */
void
writeDouble(std::ostream &os, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    os << buf;
}

void
writeHistogramJson(std::ostream &os, const RecoveryHistogram &h)
{
    os << "{\"samples\": " << h.samples << ", \"min\": " << h.min
       << ", \"max\": " << h.max << ", \"total\": " << h.total
       << ", \"mean\": ";
    writeDouble(os, h.mean());
    os << ", \"bucket_width\": " << h.bucketWidth
       << ", \"counts\": [";
    // Trim trailing empty buckets: the width is fixed, so readers
    // rebuild the tail as zeros.
    std::size_t last = h.counts.size();
    while (last > 0 && h.counts[last - 1] == 0)
        --last;
    for (std::size_t i = 0; i < last; ++i)
        os << (i ? ", " : "") << h.counts[i];
    os << "]}";
}

void
writeSchemeRecoveryJson(std::ostream &os,
                        const SchemeRecoveryStats &st)
{
    os << "{\"name\": ";
    jsonEscape(os, st.scheme);
    os << ", \"crashes\": " << st.crashes << ", \"latency\": ";
    writeHistogramJson(os, st.latency);
    os << ", \"lost_work\": ";
    writeHistogramJson(os, st.lostWork);
    os << ", \"phases\": {";
    for (std::size_t p = 0; p < kRecoveryPhases; ++p) {
        os << (p ? ", " : "") << "\"" << kPhaseJsonKeys[p]
           << "\": " << st.phaseCycles[p];
    }
    os << "}, \"runtime_overhead\": ";
    writeDouble(os, st.runtimeOverhead);
    os << ", \"durable_lin\": {\"checked\": " << st.dlChecked
       << ", \"pass\": " << st.dlPass
       << ", \"violation\": " << st.dlViolation
       << ", \"vacuous\": " << st.dlVacuous << "}";
    os << ", \"golden_cycles\": [";
    for (std::size_t i = 0; i < st.goldenCycles.size(); ++i) {
        os << (i ? ", " : "") << "{\"name\": ";
        jsonEscape(os, st.goldenCycles[i].first);
        os << ", \"cycles\": " << st.goldenCycles[i].second << "}";
    }
    os << "]}";
}

/** Per-(app, scheme) golden context shared read-only by its cases. */
struct Context
{
    std::string app;
    std::string scheme;
    core::SystemConfig config;
    std::shared_ptr<const ir::Module> module;
    Word goldenResult = 0;
    interp::SparseMemory goldenMemory;
    std::vector<arch::IoRecord> goldenIo;
    /** Fault-free timed cycles (overhead axis of the Pareto report). */
    Tick goldenCycles = 0;
    /** Compiled commit stream replayed by this context's cases. */
    core::CommitStream stream;
    bool hasStream = false;
    CrashPointSet points;
    /** Campaign-wide checkpoint cache (null = forking disabled). */
    core::CheckpointCache *ckptCache = nullptr;
    /**
     * Concurrent contexts (one per interleaving schedule): thread
     * roster, structure spec, and per-worker op sequences for the
     * durable-linearizability verdict. Checkpoint forking and stream
     * replay stay off — both are single-core machineries.
     */
    bool concurrent = false;
    std::uint32_t ilvIndex = 0;
    std::vector<core::ThreadSpec> threads{core::ThreadSpec{}};
    workloads::ConcurrentSpec cspec;
    std::vector<std::vector<workloads::ConcurrentOp>> cops;
};

/** Cache key prefix of @p ctx's checkpoints ("<app>|<scheme>"). */
std::string
ckptKeyBaseOf(const Context &ctx)
{
    return ctx.app + "|" + ctx.scheme;
}

GoldenRef
refOf(const Context &ctx)
{
    GoldenRef g;
    g.module = ctx.module.get();
    g.config = &ctx.config;
    g.result = ctx.goldenResult;
    g.memory = &ctx.goldenMemory;
    g.ioStream = &ctx.goldenIo;
    g.stream = ctx.hasStream ? &ctx.stream : nullptr;
    g.ckptCache = ctx.ckptCache;
    if (ctx.ckptCache)
        g.ckptKeyBase = ckptKeyBaseOf(ctx);
    g.threads = &ctx.threads;
    if (ctx.concurrent) {
        g.dlSpec = &ctx.cspec;
        g.dlOps = &ctx.cops;
    }
    return g;
}

/**
 * Build this context's case list. Deterministic: depends only on the
 * enumerated points and the options.
 */
std::vector<CampaignCase>
casesFor(const Context &ctx, const CampaignOptions &opt)
{
    std::vector<CampaignCase> cases;
    const auto &pts = ctx.points.points;
    if (pts.empty())
        return cases;

    auto base = [&](const CrashPoint &p) {
        CampaignCase c;
        c.app = ctx.app;
        c.scheme = ctx.scheme;
        c.pointKind = p.kind;
        c.ilvIndex = ctx.ilvIndex;
        c.interleave = ctx.config.scheme.interleave;
        return c;
    };

    for (const auto &p : pts) {
        CampaignCase c = base(p);
        c.schedule = CrashSchedule{p.tick};
        cases.push_back(std::move(c));
    }

    // Pivot for nested/media cases: a mid-run point, preferring an
    // undo-append edge (live log records guaranteed at the crash).
    CrashPoint pivot = pts[pts.size() / 2];
    for (const auto &p : pts)
        if (p.kind == CrashPointKind::UndoAppend)
            pivot = p;

    if (opt.nested) {
        // Mid-boot: the second failure lands before log scan ends.
        CampaignCase c1 = base(pivot);
        c1.pointKind = CrashPointKind::MidRecovery;
        c1.schedule = CrashSchedule{pivot.tick, 1};
        cases.push_back(std::move(c1));
        // Mid-replay: just past boot, inside undo-record replay
        // whenever the first crash left live records.
        CampaignCase c2 = base(pivot);
        c2.pointKind = CrashPointKind::MidRecovery;
        c2.schedule = CrashSchedule{pivot.tick, kBootCycles + 2};
        cases.push_back(std::move(c2));
        // Post-recovery: a second failure during re-execution.
        CampaignCase c3 = base(pivot);
        c3.schedule = CrashSchedule{pivot.tick, 4096};
        cases.push_back(std::move(c3));
    }

    if (opt.mediaFaults && schemeHasLogMedia(ctx.scheme)) {
        CampaignCase torn = base(pivot);
        torn.schedule = CrashSchedule{pivot.tick};
        torn.plan.faults.push_back(
            MediaFault{FaultKind::TornAppend, 0, 0, 0, 0});
        cases.push_back(std::move(torn));

        CampaignCase flip = base(pivot);
        flip.schedule = CrashSchedule{pivot.tick};
        flip.plan.faults.push_back(
            MediaFault{FaultKind::BitFlip, 0, 0, 0, 17});
        cases.push_back(std::move(flip));

        CampaignCase stale = base(pivot);
        stale.schedule = CrashSchedule{pivot.tick};
        stale.plan.faults.push_back(
            MediaFault{FaultKind::StaleCheckpointSlot, 0, 0, 0, 0});
        cases.push_back(std::move(stale));

        // Torn append *and* a nested mid-replay failure: the hardened
        // scan must hold up across a recovery re-entry.
        CampaignCase both = base(pivot);
        both.pointKind = CrashPointKind::MidRecovery;
        both.schedule = CrashSchedule{pivot.tick, kBootCycles + 2};
        both.plan.faults.push_back(
            MediaFault{FaultKind::TornAppend, 0, 0, 0, 0});
        cases.push_back(std::move(both));
    }
    return cases;
}

/**
 * Greedy auto-shrink: drop trailing schedule entries and individual
 * faults while the case still fails. Returns the minimal repro.
 */
CaseResult
shrinkCase(const CaseResult &failing, const GoldenRef &golden,
           std::uint64_t max_instrs, std::size_t &runs)
{
    CaseResult best = failing;
    bool improved = true;
    while (improved && runs < 32) {
        improved = false;
        std::vector<CampaignCase> candidates;
        if (best.c.schedule.size() > 1) {
            CampaignCase c = best.c;
            c.schedule.ticks.pop_back();
            candidates.push_back(std::move(c));
        }
        if (best.c.interleave.seed != 0) {
            // Is the interleaving schedule part of the minimal
            // repro, or does the failure reproduce under the
            // unjittered legacy timing too?
            CampaignCase c = best.c;
            c.ilvIndex = 0;
            c.interleave = arch::InterleaveConfig{};
            candidates.push_back(std::move(c));
        }
        for (std::size_t i = 0; i < best.c.plan.faults.size(); ++i) {
            CampaignCase c = best.c;
            c.plan.faults.erase(c.plan.faults.begin() +
                                static_cast<std::ptrdiff_t>(i));
            candidates.push_back(std::move(c));
        }
        for (const auto &cand : candidates) {
            ++runs;
            CaseResult r = runCase(cand, golden, max_instrs);
            if (!r.pass) {
                best = std::move(r);
                improved = true;
                break;
            }
            if (runs >= 32)
                break;
        }
    }
    return best;
}

} // namespace

void
RecoveryHistogram::add(std::uint64_t v)
{
    if (counts.empty())
        counts.assign(kRecoveryHistBuckets, 0);
    std::size_t b = static_cast<std::size_t>(
        v / (bucketWidth ? bucketWidth : 1));
    if (b >= counts.size())
        b = counts.size() - 1; // overflow bucket
    ++counts[b];
    if (samples == 0 || v < min)
        min = v;
    if (v > max)
        max = v;
    total += v;
    ++samples;
}

const std::vector<std::string> &
allSchemeNames()
{
    static const std::vector<std::string> names = {
        "baseline", "cwsp", "capri", "ido", "replaycache", "psp"};
    return names;
}

std::string
CampaignCase::label() const
{
    std::ostringstream os;
    os << app << "/" << scheme << " @" << schedule.describe();
    if (ilvIndex != 0)
        os << " ilv" << ilvIndex;
    for (const auto &f : plan.faults)
        os << " " << faultBrief(f);
    return os.str();
}

CaseResult
runCase(const CampaignCase &c, const GoldenRef &golden,
        std::uint64_t max_instrs)
{
    cwsp_assert(golden.module && golden.config && golden.memory &&
                    golden.ioStream,
                "runCase needs a complete golden reference");
    CaseResult r;
    r.c = c;
    try {
        // The case carries its own interleave config (the shrinker
        // may have zeroed it); everything else follows the golden
        // context's config exactly.
        core::SystemConfig cfg = *golden.config;
        cfg.scheme.interleave = c.interleave;
        core::WholeSystemSim sim(*golden.module, cfg);
        static const std::vector<core::ThreadSpec> kMainThread{
            core::ThreadSpec{}};
        const auto &threads =
            golden.threads ? *golden.threads : kMainThread;
        if (golden.dlSpec)
            sim.setCaptureFirstCrash(true);
        // Forked mode: restore the pre-crash prefix from the golden
        // pass's checkpoint instead of re-executing it. A miss
        // (evicted under the byte cap, or never captured) degrades to
        // from-scratch execution — identical verdict, more cycles.
        std::shared_ptr<const core::SimCheckpoint> fork;
        if (golden.ckptCache && !c.schedule.empty()) {
            fork = golden.ckptCache->get(
                golden.ckptKeyBase + ":" +
                std::to_string(c.schedule.ticks[0]));
            if (fork)
                golden.ckptCache->noteFork();
            else
                golden.ckptCache->noteFallback();
        }
        auto out =
            sim.runWithCrashes(threads, c.schedule, c.plan,
                               max_instrs, golden.stream, fork.get());
        r.ran = true;
        r.crashed = out.crashed;
        r.faults = out.faults;
        r.lostWork = out.lostWork;
        r.recoveryWindows.assign(out.recoveryWindows.begin(),
                                 out.recoveryWindows.end());
        for (const auto &b : out.recoveryBreakdowns) {
            for (std::size_t p = 0; p < kRecoveryPhases; ++p)
                r.recoveryPhaseCycles[p] += b.phase[p];
        }

        // Every media fault that was actually injected must have been
        // detected somewhere (silent corruption fails the case even
        // when the state happens to converge).
        r.faultsDetected =
            out.faults.faultsApplied == 0 ||
            out.faults.corruptRecordsDetected +
                    out.faults.staleSlotsDetected >=
                out.faults.faultsApplied;

        if (golden.dlSpec) {
            // Concurrent verdict: the crash may legally change which
            // worker wins each post-recovery race, so the golden
            // final state is not a reference — durable
            // linearizability of the pre-crash history against the
            // recovered image is.
            obs::DlResult dl;
            if (out.hasFirstCrash) {
                dl = obs::checkDurableLinearizability(
                    *golden.dlSpec, *golden.dlOps, out.firstStores,
                    out.firstDurableImage, out.firstFullRestart);
            } else {
                dl.outcome = obs::DlOutcome::Vacuous;
                dl.reason = "program finished before the crash";
            }
            r.dlVerdict = obs::dlOutcomeName(dl.outcome);
            r.dlInvokedOps = dl.invokedOps;
            r.dlCompletedOps = dl.completedOps;
            r.consistent = true; // differential check not applicable
            r.resultMatch = true;
            for (std::uint32_t t = 0;
                 t < out.result.returnValues.size(); ++t) {
                r.resultMatch &=
                    out.result.returnValues[t] == golden.result;
            }
            r.pass = r.resultMatch && r.faultsDetected &&
                     dl.outcome != obs::DlOutcome::Violation;
            if (!r.pass) {
                std::ostringstream os;
                if (dl.outcome == obs::DlOutcome::Violation)
                    os << "durable linearizability: " << dl.reason
                       << "; ";
                if (!r.resultMatch)
                    os << "post-recovery worker result differs; ";
                if (!r.faultsDetected)
                    os << "seeded media fault went undetected; ";
                r.detail = os.str();
            }
            return r;
        }

        auto check = core::checkGlobals(*golden.module,
                                        *golden.memory, sim.memory());
        r.consistent = check.consistent;
        r.divergences = check.totalDivergences;
        r.resultMatch = !out.result.returnValues.empty() &&
                        out.result.returnValues[0] == golden.result;

        // Exactly-once device output — except across a full restart,
        // where re-execution from entry necessarily re-issues output
        // (the documented cost of degradation step 3).
        if (out.faults.fullRestarts == 0) {
            r.ioChecked = true;
            r.ioMatch =
                out.ioStream.size() == golden.ioStream->size();
            for (std::size_t i = 0; r.ioMatch &&
                                    i < out.ioStream.size();
                 ++i) {
                const auto &a = out.ioStream[i];
                const auto &b = (*golden.ioStream)[i];
                r.ioMatch = a.device == b.device &&
                            a.payload == b.payload &&
                            a.core == b.core;
            }
        }

        r.pass = r.consistent && r.resultMatch &&
                 (!r.ioChecked || r.ioMatch) && r.faultsDetected;
        if (!r.pass) {
            std::ostringstream os;
            if (!r.consistent)
                os << "globals diverge (" << r.divergences
                   << " words, first in "
                   << (check.divergences.empty()
                           ? std::string("?")
                           : check.divergences[0].global)
                   << "); ";
            if (!r.resultMatch)
                os << "return value differs; ";
            if (r.ioChecked && !r.ioMatch)
                os << "device output not exactly-once; ";
            if (!r.faultsDetected)
                os << "seeded media fault went undetected; ";
            r.detail = os.str();
        }
    } catch (const std::exception &e) {
        r.ran = false;
        r.pass = false;
        r.detail = std::string("exception: ") + e.what();
    }
    return r;
}

CampaignReport
runCampaign(const CampaignOptions &options)
{
    cwsp_assert(!options.apps.empty(),
                "fault campaign needs at least one app");
    const std::vector<std::string> &schemes =
        options.schemes.empty() ? allSchemeNames() : options.schemes;

    driver::BatchConfig bc;
    bc.jobs = options.jobs;
    bc.useDiskCache = false;
    driver::BatchRunner pool(bc);

    // One campaign-wide checkpoint cache (the pool's, shared
    // read-only across its workers); every context's golden pass
    // populates it, every case forks from it. Byte-capped by
    // CWSP_CKPT_CACHE_MB; evictions surface as fallbacks.
    core::CheckpointCache *ckptCache =
        options.forkCheckpoints ? &pool.checkpointCache() : nullptr;

    // Phase 1: golden runs + crash-point enumeration, one context per
    // (app, scheme) slot — concurrent apps get one slot per
    // interleaving schedule — parallel, each self-contained.
    std::vector<Context> contexts;
    for (std::size_t a = 0; a < options.apps.size(); ++a) {
        const bool conc =
            workloads::findConcurrentApp(options.apps[a]) != nullptr;
        const std::uint32_t slots =
            conc ? std::max<std::uint32_t>(1, options.numSchedules)
                 : 1;
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            for (std::uint32_t k = 0; k < slots; ++k) {
                Context ctx;
                ctx.app = options.apps[a];
                ctx.scheme = schemes[s];
                ctx.concurrent = conc;
                ctx.ilvIndex = k;
                contexts.push_back(std::move(ctx));
            }
        }
    }
    {
        std::vector<std::function<void()>> prep;
        for (Context &ctxSlot : contexts) {
            {
                Context &ctx = ctxSlot;
                prep.push_back([&ctx, &options,
                                cache = ckptCache]() {
                    ctx.config = core::makeSystemConfig(ctx.scheme);
                    if (ctx.concurrent) {
                        // Multicore golden run: fault-free timing
                        // plus the reference worker return value
                        // (each worker deterministically finishes
                        // opsPerWorker ops). Commit-stream replay and
                        // checkpoint forking are single-core
                        // machineries and stay off; the durable-lin
                        // verdict replaces the differential checks.
                        const auto *cp =
                            workloads::findConcurrentApp(ctx.app);
                        ctx.config.numCores = cp->params.numWorkers;
                        ctx.config.scheme.interleave =
                            core::interleaveSchedule(
                                options.interleaveSeed, ctx.ilvIndex);
                        ctx.config.scheme.bugCasSkipPersist =
                            options.seedCasBug;
                        ctx.module = workloads::buildConcurrentApp(
                            *cp, ctx.config.compiler);
                        ctx.cspec = workloads::concurrentSpec(
                            *ctx.module, *cp);
                        ctx.threads.clear();
                        for (std::uint32_t t = 0;
                             t < cp->params.numWorkers; ++t) {
                            ctx.cops.push_back(
                                workloads::concurrentOps(*cp, t));
                            ctx.threads.push_back(core::ThreadSpec{
                                "worker", {Word{t}}});
                        }
                        core::WholeSystemSim sim(*ctx.module,
                                                 ctx.config);
                        ctx.goldenCycles =
                            sim.run(ctx.threads, options.maxInstrs)
                                .cycles;
                        ctx.goldenResult = cp->params.opsPerWorker;
                        ctx.points = enumerateCrashPoints(
                            *ctx.module, ctx.config, ctx.threads,
                            options.pointsPerKind);
                        return;
                    }
                    const auto &profile =
                        workloads::appByName(ctx.app);
                    ctx.module = workloads::buildApp(
                        profile, ctx.config.compiler);
                    ctx.goldenResult = interp::runToCompletion(
                        *ctx.module, ctx.goldenMemory, "main", {});
                    ctx.goldenIo = core::collectIoStream(
                        *ctx.module, "main", {});
                    // Record the commit stream once; every case of
                    // this context then replays its pristine epochs
                    // instead of re-interpreting them. Battery-backed
                    // schemes never replay (they need a live snapshot
                    // at the crash instant), so skip the recording.
                    if (!ctx.config.scheme.batteryBacked) {
                        ctx.stream = core::recordCommitStream(
                            *ctx.module, "main", {},
                            options.maxInstrs,
                            workloads::estimatedInstrs(profile));
                        ctx.hasStream = true;
                    }
                    ctx.points = enumerateCrashPoints(
                        *ctx.module, ctx.config, {core::ThreadSpec{}},
                        options.pointsPerKind);
                    // Forked mode: one more pass over the golden
                    // schedule captures a checkpoint at every first
                    // crash tick any of this context's cases will
                    // use (nested/media cases all pivot on an
                    // enumerated point, so the point ticks cover
                    // them). Cost: one run per context, amortized
                    // over its ~dozen cases.
                    if (cache && !ctx.points.points.empty()) {
                        std::vector<Tick> ticks;
                        for (const auto &p : ctx.points.points)
                            ticks.push_back(p.tick);
                        std::sort(ticks.begin(), ticks.end());
                        ticks.erase(
                            std::unique(ticks.begin(), ticks.end()),
                            ticks.end());
                        core::WholeSystemSim sim(*ctx.module,
                                                 ctx.config);
                        auto cr = sim.captureCheckpoints(
                            {core::ThreadSpec{}}, ticks,
                            options.maxInstrs,
                            ctx.hasStream ? &ctx.stream : nullptr);
                        ctx.goldenCycles = cr.result.cycles;
                        std::string base = ckptKeyBaseOf(ctx);
                        for (auto &ck : cr.checkpoints)
                            cache->insert(
                                base + ":" +
                                    std::to_string(ck->crashTick),
                                ck);
                        ctx.ckptCache = cache;
                    } else {
                        // No capture pass doubling as the timed
                        // golden run: run one for the Pareto
                        // report's overhead axis (stream-driven when
                        // available, so it costs a fraction of an
                        // interpreted run).
                        core::WholeSystemSim sim(*ctx.module,
                                                 ctx.config);
                        ctx.goldenCycles =
                            ctx.hasStream
                                ? sim.runReplay(ctx.stream,
                                                options.maxInstrs)
                                      .cycles
                                : sim.run("main", {},
                                          options.maxInstrs)
                                      .cycles;
                    }
                });
            }
        }
        pool.runTasks(prep);
    }

    // Phase 2: build the deterministic case list and run it across
    // the pool; results land by index, so the report's order is
    // independent of the jobs count.
    CampaignReport report;
    std::vector<const Context *> caseCtx;
    for (const auto &ctx : contexts) {
        auto cs = casesFor(ctx, options);
        for (auto &c : cs) {
            report.cases.push_back(CaseResult{});
            report.cases.back().c = std::move(c);
            caseCtx.push_back(&ctx);
        }
    }
    {
        std::vector<std::function<void()>> tasks;
        tasks.reserve(report.cases.size());
        for (std::size_t i = 0; i < report.cases.size(); ++i) {
            tasks.push_back([i, &report, &caseCtx, &options]() {
                report.cases[i] =
                    runCase(report.cases[i].c, refOf(*caseCtx[i]),
                            options.maxInstrs);
            });
        }
        pool.runTasks(tasks);
    }

    // Phase 3: aggregate; auto-shrink failures to minimal repros.
    for (std::size_t i = 0; i < report.cases.size(); ++i) {
        const CaseResult &r = report.cases[i];
        ++report.casesRun;
        report.totals.mergeFrom(r.faults);
        if (r.pass) {
            ++report.casesPassed;
            continue;
        }
        if (options.shrink && r.ran) {
            report.failures.push_back(shrinkCase(
                r, refOf(*caseCtx[i]), options.maxInstrs,
                report.shrinkRuns));
        } else {
            report.failures.push_back(r);
        }
    }
    // Per-scheme recovery aggregation (latency / lost-work
    // histograms, phase totals, runtime overhead): the raw material
    // of the --recovery-report Pareto table. Campaign scheme order.
    {
        report.recovery.resize(schemes.size());
        std::map<std::string, std::size_t> idxOf;
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            SchemeRecoveryStats &st = report.recovery[s];
            st.scheme = schemes[s];
            st.latency.bucketWidth = 64;
            st.latency.counts.assign(kRecoveryHistBuckets, 0);
            st.lostWork.bucketWidth = 1024;
            st.lostWork.counts.assign(kRecoveryHistBuckets, 0);
            idxOf[schemes[s]] = s;
        }
        for (const CaseResult &r : report.cases) {
            if (!r.ran)
                continue;
            SchemeRecoveryStats &st =
                report.recovery[idxOf.at(r.c.scheme)];
            for (std::uint64_t w : r.recoveryWindows) {
                ++st.crashes;
                st.latency.add(w);
            }
            for (std::size_t p = 0; p < kRecoveryPhases; ++p)
                st.phaseCycles[p] += r.recoveryPhaseCycles[p];
            if (r.crashed)
                st.lostWork.add(r.lostWork);
            if (!r.dlVerdict.empty()) {
                ++st.dlChecked;
                if (r.dlVerdict == "pass")
                    ++st.dlPass;
                else if (r.dlVerdict == "violation")
                    ++st.dlViolation;
                else
                    ++st.dlVacuous;
            }
        }
        for (const Context &ctx : contexts) {
            // Jittered schedules measure the same binary under
            // perturbed timing; only schedule 0 (legacy, unjittered)
            // feeds the fault-free overhead axis.
            if (ctx.ilvIndex != 0)
                continue;
            report.recovery[idxOf.at(ctx.scheme)]
                .goldenCycles.emplace_back(ctx.app,
                                           ctx.goldenCycles);
        }
        // Runtime overhead: gmean over apps of this scheme's
        // fault-free cycles vs. the baseline scheme's. Unavailable
        // (0) unless baseline was swept.
        auto bl = idxOf.find("baseline");
        if (bl != idxOf.end()) {
            std::map<std::string, std::uint64_t> base;
            for (const auto &[app, cyc] :
                 report.recovery[bl->second].goldenCycles)
                base[app] = cyc;
            for (SchemeRecoveryStats &st : report.recovery) {
                double logSum = 0.0;
                std::size_t apps = 0;
                for (const auto &[app, cyc] : st.goldenCycles) {
                    auto it = base.find(app);
                    if (it == base.end() || it->second == 0 ||
                        cyc == 0) {
                        continue;
                    }
                    logSum +=
                        std::log(static_cast<double>(cyc) /
                                 static_cast<double>(it->second));
                    ++apps;
                }
                if (apps)
                    st.runtimeOverhead =
                        std::exp(logSum /
                                 static_cast<double>(apps));
            }
        }
    }
    if (ckptCache) {
        auto cs = ckptCache->stats();
        report.ckptCache.enabled = true;
        report.ckptCache.captures = cs.captures;
        report.ckptCache.forks = cs.forks;
        report.ckptCache.evictions = cs.evictions;
        report.ckptCache.fallbacks = cs.fallbacks;
        report.ckptCache.bytesResident = cs.bytesResident;
        report.ckptCache.entries = cs.entries;
    }
    return report;
}

void
CampaignReport::writeJson(std::ostream &os) const
{
    os << "{\n  \"cases_run\": " << casesRun
       << ",\n  \"cases_passed\": " << casesPassed
       << ",\n  \"failure_count\": " << failures.size()
       << ",\n  \"shrink_runs\": " << shrinkRuns
       << ",\n  \"totals\": ";
    writeFaultStatsJson(os, totals);
    os << ",\n  \"checkpoint_cache\": {\"enabled\": "
       << (ckptCache.enabled ? "true" : "false")
       << ", \"captures\": " << ckptCache.captures
       << ", \"forks\": " << ckptCache.forks
       << ", \"evictions\": " << ckptCache.evictions
       << ", \"fallbacks\": " << ckptCache.fallbacks
       << ", \"bytes_resident\": " << ckptCache.bytesResident
       << ", \"entries\": " << ckptCache.entries << "}";
    os << ",\n  \"recovery\": [";
    for (std::size_t i = 0; i < recovery.size(); ++i) {
        os << (i ? ",\n    " : "\n    ");
        writeSchemeRecoveryJson(os, recovery[i]);
    }
    os << (recovery.empty() ? "]" : "\n  ]");
    os << ",\n  \"failures\": [";
    for (std::size_t i = 0; i < failures.size(); ++i) {
        os << (i ? ",\n    " : "\n    ");
        writeCaseJson(os, failures[i]);
    }
    os << (failures.empty() ? "]" : "\n  ]");
    os << ",\n  \"cases\": [";
    for (std::size_t i = 0; i < cases.size(); ++i) {
        os << (i ? ",\n    " : "\n    ");
        writeCaseJson(os, cases[i]);
    }
    os << (cases.empty() ? "]" : "\n  ]");
    os << "\n}\n";
}

void
CampaignReport::fillStats(StatsRegistry &reg) const
{
    reg.counter("fault_campaign.cases_run").inc(casesRun);
    reg.counter("fault_campaign.cases_passed").inc(casesPassed);
    reg.counter("fault_campaign.failures").inc(failures.size());
    reg.counter("fault_campaign.shrink_runs").inc(shrinkRuns);
    reg.counter("fault_campaign.crashes_injected")
        .inc(totals.crashesInjected);
    reg.counter("fault_campaign.nested_crashes")
        .inc(totals.nestedCrashes);
    reg.counter("fault_campaign.recovery_crashes")
        .inc(totals.recoveryCrashes);
    reg.counter("fault_campaign.undo_replay_passes")
        .inc(totals.undoReplayPasses);
    reg.counter("fault_campaign.partial_replay_records")
        .inc(totals.partialReplayRecords);
    reg.counter("fault_campaign.faults_requested")
        .inc(totals.faultsRequested);
    reg.counter("fault_campaign.faults_applied")
        .inc(totals.faultsApplied);
    reg.counter("fault_campaign.corrupt_records_detected")
        .inc(totals.corruptRecordsDetected);
    reg.counter("fault_campaign.torn_tails_dropped")
        .inc(totals.tornTailsDropped);
    reg.counter("fault_campaign.region_restarts")
        .inc(totals.regionRestarts);
    reg.counter("fault_campaign.full_restarts")
        .inc(totals.fullRestarts);
    reg.counter("fault_campaign.stale_slots_detected")
        .inc(totals.staleSlotsDetected);
    reg.counter("fault_campaign.atomic_resumes")
        .inc(totals.atomicResumes);
    if (ckptCache.enabled) {
        reg.counter("ckpt.captures").inc(ckptCache.captures);
        reg.counter("ckpt.forks").inc(ckptCache.forks);
        reg.counter("ckpt.evictions").inc(ckptCache.evictions);
        reg.counter("ckpt.fallbacks").inc(ckptCache.fallbacks);
        reg.counter("ckpt.bytes_resident")
            .inc(ckptCache.bytesResident);
        reg.counter("ckpt.entries").inc(ckptCache.entries);
    }
    for (const SchemeRecoveryStats &st : recovery) {
        const std::string p = "recovery." + st.scheme + ".";
        reg.counter(p + "crashes").inc(st.crashes);
        for (std::size_t i = 0; i < kRecoveryPhases; ++i) {
            reg.counter(p + "phases." + kPhaseJsonKeys[i])
                .inc(st.phaseCycles[i]);
        }
        if (st.runtimeOverhead > 0.0) {
            reg.average(p + "runtime_overhead")
                .sample(st.runtimeOverhead);
        }
        for (const auto &[app, cycles] : st.goldenCycles)
            reg.counter(p + "golden_cycles." + app).inc(cycles);
        if (st.dlChecked) {
            reg.counter(p + "durable_lin.checked").inc(st.dlChecked);
            reg.counter(p + "durable_lin.pass").inc(st.dlPass);
            reg.counter(p + "durable_lin.violation")
                .inc(st.dlViolation);
            reg.counter(p + "durable_lin.vacuous").inc(st.dlVacuous);
        }
        // Touch the histograms so zero-crash schemes still export an
        // (empty) series with the canonical shape.
        reg.histogram(p + "latency", st.latency.bucketWidth,
                      kRecoveryHistBuckets);
        reg.histogram(p + "lost_work", st.lostWork.bucketWidth,
                      kRecoveryHistBuckets);
    }
    // Refill the histograms from the raw per-case windows: exact
    // moments (mean/max/percentiles), not bucket-quantized ones.
    for (const CaseResult &r : cases) {
        if (!r.ran)
            continue;
        const std::string p = "recovery." + r.c.scheme + ".";
        for (std::uint64_t w : r.recoveryWindows) {
            reg.histogram(p + "latency", 64, kRecoveryHistBuckets)
                .sample(w);
        }
        if (r.crashed) {
            reg.histogram(p + "lost_work", 1024,
                          kRecoveryHistBuckets)
                .sample(r.lostWork);
        }
    }
}

} // namespace cwsp::fault
