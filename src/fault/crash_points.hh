/**
 * @file
 * Trace-driven crash-point enumeration. Random crash ticks (the
 * pre-campaign test strategy) mostly land in the middle of plain
 * execution; the states that actually stress the recovery protocol
 * cluster around persistence-protocol transitions. This layer runs a
 * program once with a trace sink attached and turns the event stream
 * into a deduplicated set of *semantically interesting* crash points:
 *
 *  - just after a region opens (RegionBegin: minimal persisted
 *    prefix, resume must fall back to an older region or restart),
 *  - just after a region's own stores fully persist (RegionPersist:
 *    the resume-point frontier moves),
 *  - halfway through a scheme drain stall (MidDrain: the persist
 *    path is saturated, many stores in flight),
 *  - just after an undo-log append (UndoAppend: log-before-accept
 *    edge — the record is durable, the guarded store may not be),
 *  - inside a recovery window (MidRecovery: produced by the campaign
 *    when it builds nested schedules, never by enumeration).
 */

#ifndef CWSP_FAULT_CRASH_POINTS_HH
#define CWSP_FAULT_CRASH_POINTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/whole_system_sim.hh"
#include "sim/trace.hh"

namespace cwsp::fault {

/** Why a crash tick is interesting. */
enum class CrashPointKind : std::uint8_t {
    RegionBegin,   ///< right after a region boundary commits
    RegionPersist, ///< right after a region's stores persist
    MidDrain,      ///< midway through a scheme drain stall
    UndoAppend,    ///< right after an undo record lands
    MidRecovery,   ///< inside a recovery window (nested schedules)
    AtomicCommit,  ///< right after an atomic RMW commits (the
                   ///< concurrent campaign's interleaving boundaries)
};

inline constexpr std::size_t kNumCrashPointKinds = 6;

/** Stable name ("region_begin", "mid_drain", ...). */
const char *crashPointKindName(CrashPointKind kind);

/** Parse a stable name back; false when unknown. */
bool parseCrashPointKind(const std::string &name, CrashPointKind &out);

/** One candidate crash instant. */
struct CrashPoint
{
    Tick tick = 0;
    CrashPointKind kind = CrashPointKind::RegionBegin;
    std::uint64_t arg = 0; ///< region id / word addr of the trigger
};

/**
 * Trace sink that harvests crash points from a live event stream.
 * Attach to a no-crash run (WholeSystemSim::attachTraceSink), then
 * call points(). Sinks see the full stream before the ring, so
 * harvesting is immune to ring overwrite.
 */
class CrashPointCollector : public sim::TraceSink
{
  public:
    void onTraceEvent(const sim::TraceEvent &event) override;

    /**
     * Deduplicated points, sorted by tick. @p max_per_kind > 0 evenly
     * subsamples each kind down to that many points (keeping first
     * and last), so campaign cost scales with the knob rather than
     * with program length. @p max_tick > 0 drops points at or past
     * that cycle *before* subsampling — the MC drains past the last
     * core cycle, so tail events can sit outside the crashable run.
     */
    std::vector<CrashPoint> points(std::size_t max_per_kind = 0,
                                   Tick max_tick = 0) const;

    std::size_t rawCount() const { return raw_.size(); }
    void clear() { raw_.clear(); }

  private:
    std::vector<CrashPoint> raw_;
};

/** Result of enumerating one (module, config, threads) combination. */
struct CrashPointSet
{
    std::vector<CrashPoint> points; ///< sorted by tick, in-run only
    Tick runCycles = 0;             ///< full-run cycle count
};

/**
 * Run @p module under @p config once with a collector attached and
 * return the harvested points (ticks clamped to the run: a crash at
 * or past the final cycle never fires). The run is a plain timed run;
 * schemes that record nothing (baseline, psp) still produce
 * RegionBegin/MidDrain points from their boundary events.
 */
CrashPointSet enumerateCrashPoints(
    const ir::Module &module, const core::SystemConfig &config,
    const std::vector<core::ThreadSpec> &threads,
    std::size_t max_per_kind = 8);

} // namespace cwsp::fault

#endif // CWSP_FAULT_CRASH_POINTS_HH
